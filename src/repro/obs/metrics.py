"""Process-local metrics registry: counters, gauges, bounded histograms.

Every subsystem below the controller used to invent its own counters
(``TraceCache.hits``, ``RoundTelemetry.retries``, ...), and anything that
ran inside a worker process of the parallel experiment runner was invisible
to the parent.  This module is the one place instruments live:

* **Counters** are monotonic integers (``em.trace_cache.hits``).  Merging
  sums them — integer addition, so merges are exact and associative.
* **Gauges** are levels (``em.trace_cache.entries``).  Merging takes the
  maximum, the only order-independent reduction that makes sense for a
  level sampled per process.
* **Histograms** use *fixed log-spaced bin edges* chosen at registration
  from ``(lo, hi, bins_per_decade)`` — every process derives the same edge
  vector from the same integer exponent grid, so worker snapshots merge
  by elementwise integer bin addition, deterministically and associatively
  in any merge order (``tests/test_obs.py``).

Instruments never touch random streams or experiment numerics: results are
bit-identical with observability enabled or disabled.  ``set_enabled``
(or the ``REPRO_OBS=0`` environment variable) turns all recording into
no-ops for overhead A/B runs.

Snapshots (:class:`MetricsSnapshot`) are frozen, picklable value objects:
the parallel runner snapshots each worker's registry around every task and
ships the *delta* back, so the parent can merge a complete run-level view
at any ``--jobs`` value.
"""

from __future__ import annotations

import math
import os
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "CounterHandle",
    "Gauge",
    "GaugeHandle",
    "Histogram",
    "HistogramHandle",
    "HistogramState",
    "MetricsSnapshot",
    "MetricsRegistry",
    "counter_handle",
    "gauge_handle",
    "global_registry",
    "histogram_handle",
    "monotonic_s",
    "reset_metrics",
    "merge_snapshots",
    "log_bin_edges",
    "enabled",
    "set_enabled",
]

#: Default histogram range: 1 microsecond .. 1000 seconds covers every
#: latency-like quantity in the repo (switch settling to suite wall time).
DEFAULT_LO = 1e-6
DEFAULT_HI = 1e3
DEFAULT_BINS_PER_DECADE = 3

_ENABLED = os.environ.get("REPRO_OBS", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def enabled() -> bool:
    """Whether instruments record (global, process-local switch)."""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Set the recording switch; returns the previous value.

    Disabling makes every ``inc``/``set``/``observe``/span a no-op — the
    overhead A/B baseline.  It never changes experiment results, which are
    bit-identical either way (instruments read no random streams).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


def monotonic_s() -> float:
    """The obs-sanctioned monotonic clock (seconds, arbitrary epoch).

    The *only* stopwatch library code outside ``repro/obs/`` may use
    (RPL003): pairs of readings measure real elapsed time for latency
    histograms without ever touching the wall clock, so no measured value
    can leak into experiment numerics.
    """
    return time.perf_counter()


def log_bin_edges(
    lo: float = DEFAULT_LO,
    hi: float = DEFAULT_HI,
    bins_per_decade: int = DEFAULT_BINS_PER_DECADE,
) -> Tuple[float, ...]:
    """Fixed log-spaced bin edges ``10^(k / bins_per_decade)``.

    The exponent grid is *integer* (``k`` from ``round(log10(lo)*bpd)`` to
    ``round(log10(hi)*bpd)``), so every process computes bit-identical
    edges from the same parameters — the precondition for deterministic
    histogram merges.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if bins_per_decade <= 0:
        raise ValueError(f"bins_per_decade must be positive, got {bins_per_decade}")
    k_lo = round(math.log10(lo) * bins_per_decade)
    k_hi = round(math.log10(hi) * bins_per_decade)
    if k_hi <= k_lo:
        raise ValueError(f"range ({lo}, {hi}) spans no bins at {bins_per_decade}/decade")
    return tuple(10.0 ** (k / bins_per_decade) for k in range(k_lo, k_hi + 1))


class Counter:
    """A monotonic integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if _ENABLED:
            self.value += amount


class Gauge:
    """A last-value level instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if _ENABLED:
            self.value = float(value)


@dataclass(frozen=True)
class HistogramState:
    """A histogram's frozen, picklable state.

    ``counts`` has ``len(edges) + 1`` entries: one underflow bin
    (``value < edges[0]``), the inter-edge bins, and one overflow bin
    (``value >= edges[-1]``).  ``min``/``max`` are ``inf``/``-inf`` while
    empty.
    """

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    def merged(self, other: "HistogramState") -> "HistogramState":
        """Elementwise merge (bin edges must match)."""
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different bin edges")
        return HistogramState(
            edges=self.edges,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def delta(self, earlier: "HistogramState") -> "HistogramState":
        """Observations recorded since ``earlier`` (same-registry snapshot).

        Bin counts and totals subtract exactly; ``min``/``max`` carry the
        cumulative window (a later merge of deltas still recovers the true
        run-level extrema, since min-of-mins / max-of-maxes is exact).
        """
        if self.edges != earlier.edges:
            raise ValueError("cannot delta histograms with different bin edges")
        return HistogramState(
            edges=self.edges,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            count=self.count - earlier.count,
            sum=self.sum - earlier.sum,
            min=self.min,
            max=self.max,
        )

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramState":
        return cls(
            edges=tuple(float(e) for e in data["edges"]),
            counts=tuple(int(c) for c in data["counts"]),
            count=int(data["count"]),
            sum=float(data["sum"]),
            min=float(data["min"]),
            max=float(data["max"]),
        )


def _empty_state(edges: Tuple[float, ...]) -> HistogramState:
    return HistogramState(
        edges=edges,
        counts=tuple([0] * (len(edges) + 1)),
        count=0,
        sum=0.0,
        min=math.inf,
        max=-math.inf,
    )


class Histogram:
    """A bounded histogram over fixed log-spaced bins.

    The bin count is fixed at registration, so memory is bounded no matter
    how many values are observed, and two processes that registered the
    same instrument merge bin-for-bin.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, edges: Tuple[float, ...]) -> None:
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        value = float(value)
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def state(self) -> HistogramState:
        return HistogramState(
            edges=self.edges,
            counts=tuple(self.counts),
            count=self.count,
            sum=self.sum,
            min=self.min,
            max=self.max,
        )

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable copy of a registry's instrument values."""

    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    histograms: Mapping[str, HistogramState]

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls(counters={}, gauges={}, histograms={})

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What was recorded between ``earlier`` and this snapshot.

        Both snapshots must come from the same registry (instruments only
        ever grow, so names in ``earlier`` are a subset of this one's).
        """
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, state in self.histograms.items():
            prior = earlier.histograms.get(name)
            histograms[name] = state if prior is None else state.delta(prior)
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Order-independent merge: counters sum, gauges max, bins add."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, state in other.histograms.items():
            prior = histograms.get(name)
            histograms[name] = state if prior is None else prior.merged(state)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def as_dict(self) -> dict:
        """JSON-serializable form (the run-record ``metrics`` field)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: state.as_dict()
                for name, state in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                str(k): HistogramState.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge any number of snapshots into one run-level view.

    Counters and histogram bins are integers, so the result is identical
    for any merge order or grouping (associative and commutative); gauges
    reduce by ``max``.
    """
    merged = MetricsSnapshot.empty()
    for snapshot in snapshots:
        merged = merged.merged(snapshot)
    return merged


class MetricsRegistry:
    """Process-local home of named instruments.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    same object thereafter, so callers may hold instrument references in
    hot paths (``reset`` zeroes values in place — held references stay
    valid).  Names follow ``<package>.<subsystem>.<quantity>``, e.g.
    ``em.trace_cache.hits`` (see DESIGN.md "Observability").
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self,
        name: str,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        bins_per_decade: int = DEFAULT_BINS_PER_DECADE,
    ) -> Histogram:
        edges = log_bin_edges(lo, hi, bins_per_decade)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        elif instrument.edges != edges:
            raise ValueError(
                f"histogram {name!r} already registered with different bin edges"
            )
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={c.name: c.value for c in self._counters.values()},
            gauges={g.name: g.value for g in self._gauges.values()},
            histograms={h.name: h.state() for h in self._histograms.values()},
        )

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.reset()


_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry all subsystems register instruments in."""
    return _REGISTRY


def reset_metrics(clear: bool = False) -> None:
    """Zero the global registry (benchmarks use this between phases).

    With ``clear=True`` the registry object itself is *replaced*, dropping
    every registered instrument — the isolation mode tests use so that
    instruments registered by one test (``test.work`` and friends) do not
    linger in later snapshots.  Hot-path call sites must therefore never
    cache raw :class:`Counter`/:class:`Gauge`/:class:`Histogram` objects at
    import time; they hold :class:`CounterHandle`-style handles instead,
    which re-resolve automatically when the registry is replaced.
    """
    global _REGISTRY
    if clear:
        _REGISTRY = MetricsRegistry()
    else:
        _REGISTRY.reset()


# ----------------------------------------------------------------------
# Instrument handles (stale-registry-proof module-level references)
# ----------------------------------------------------------------------
class _Handle:
    """Base of the cached instrument handles module scopes hold.

    A raw instrument reference captured at import time points into
    whatever registry existed *then*; after ``reset_metrics(clear=True)``
    such a reference keeps recording into a dead registry while snapshots
    read a fresh zero instrument — the stale-handle hazard.  A handle
    stores only the instrument *name* plus a one-slot cache keyed on the
    registry's identity: the hot path pays two attribute loads and an
    ``is`` check, and re-resolves through :func:`global_registry` only
    when the registry actually changed.
    """

    __slots__ = ("name", "_registry", "_instrument")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Optional[MetricsRegistry] = None
        self._instrument = None

    def _resolve(self):
        raise NotImplementedError


class CounterHandle(_Handle):
    """A stale-proof reference to a named :class:`Counter`."""

    __slots__ = ()

    def _resolve(self) -> Counter:
        registry = _REGISTRY
        if self._registry is not registry:
            self._instrument = registry.counter(self.name)
            self._registry = registry
        return self._instrument

    @property
    def value(self) -> int:
        return self._resolve().value

    def inc(self, amount: int = 1) -> None:
        self._resolve().inc(amount)


class GaugeHandle(_Handle):
    """A stale-proof reference to a named :class:`Gauge`."""

    __slots__ = ()

    def _resolve(self) -> Gauge:
        registry = _REGISTRY
        if self._registry is not registry:
            self._instrument = registry.gauge(self.name)
            self._registry = registry
        return self._instrument

    @property
    def value(self) -> float:
        return self._resolve().value

    def set(self, value: float) -> None:
        self._resolve().set(value)


class HistogramHandle(_Handle):
    """A stale-proof reference to a named :class:`Histogram`."""

    __slots__ = ("_lo", "_hi", "_bins_per_decade")

    def __init__(
        self,
        name: str,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        bins_per_decade: int = DEFAULT_BINS_PER_DECADE,
    ) -> None:
        super().__init__(name)
        # Validate eagerly so a bad range fails at import, not first use.
        log_bin_edges(lo, hi, bins_per_decade)
        self._lo = lo
        self._hi = hi
        self._bins_per_decade = bins_per_decade

    def _resolve(self) -> Histogram:
        registry = _REGISTRY
        if self._registry is not registry:
            self._instrument = registry.histogram(
                self.name, self._lo, self._hi, self._bins_per_decade
            )
            self._registry = registry
        return self._instrument

    def observe(self, value: float) -> None:
        self._resolve().observe(value)

    def state(self) -> HistogramState:
        return self._resolve().state()


def counter_handle(name: str) -> CounterHandle:
    """Module-level registration of a counter, by stale-proof handle."""
    handle = CounterHandle(name)
    handle._resolve()
    return handle


def gauge_handle(name: str) -> GaugeHandle:
    """Module-level registration of a gauge, by stale-proof handle."""
    handle = GaugeHandle(name)
    handle._resolve()
    return handle


def histogram_handle(
    name: str,
    lo: float = DEFAULT_LO,
    hi: float = DEFAULT_HI,
    bins_per_decade: int = DEFAULT_BINS_PER_DECADE,
) -> HistogramHandle:
    """Module-level registration of a histogram, by stale-proof handle."""
    handle = HistogramHandle(name, lo, hi, bins_per_decade)
    handle._resolve()
    return handle
