"""Run records: one JSONL line per experiment run, schema-validated.

A run record is the machine-readable artefact a production pipeline would
archive for every experiment invocation: what ran (experiment name +
config + seeds + jobs), what it cost (wall clock, per-phase span
summaries), what the subsystems did (the merged metrics registry — trace
cache, ray tracer, basis, control protocol, controller counters from the
parent *and* every worker process), and where (git/python/numpy/platform
metadata).  ``repro report <records.jsonl>`` renders them; CI validates
every emitted record against :func:`validate_record` so schema drift is
caught in PRs.

The aggregation primitive is :class:`ObsSample` — a picklable
(metrics snapshot, span summaries, pid) triple.  The parallel runner
takes a sample delta around every task in every worker; the parent merges
those deltas with its own delta over the whole experiment body.  Because
counters and histogram bins are integers, the merged totals are exact at
any ``--jobs`` value — the per-process blind spot the old
``process_telemetry()`` documented is gone.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .metrics import MetricsSnapshot, enabled, global_registry
from .tracing import SpanRecord, SpanSummary, global_tracer, merge_span_summaries

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ObsSample",
    "current_sample",
    "merge_samples",
    "RunRecorder",
    "run_metadata",
    "append_record",
    "read_records",
    "validate_record",
]

#: Bump on any backwards-incompatible record shape change.  v2 adds the
#: optional ``request_traces`` section (request-scoped span stitching);
#: v1 records remain readable and valid.
SCHEMA_VERSION = 2

#: Versions :func:`validate_record` accepts.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


# ----------------------------------------------------------------------
# Observability samples (the worker-aggregation unit)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObsSample:
    """One process's observability state (or a delta of it).

    Picklable by construction: the parallel runner returns one delta per
    task from each worker process alongside the task result.
    """

    metrics: MetricsSnapshot
    spans: Mapping[str, SpanSummary]
    pid: int

    def delta(self, earlier: "ObsSample") -> "ObsSample":
        """What this process recorded since ``earlier``."""
        spans = {}
        for name, summary in self.spans.items():
            prior = earlier.spans.get(name)
            spans[name] = summary if prior is None else summary.delta(prior)
        return ObsSample(
            metrics=self.metrics.delta(earlier.metrics), spans=spans, pid=self.pid
        )


def current_sample() -> ObsSample:
    """Snapshot this process's global registry and tracer."""
    return ObsSample(
        metrics=global_registry().snapshot(),
        spans=global_tracer().summaries(),
        pid=os.getpid(),
    )


def merge_samples(samples: Iterable[ObsSample]) -> ObsSample:
    """Merge sample deltas into one run-level view.

    Counters, histogram bins and span counts/totals add exactly in any
    order.  Gauges are levels, so the per-``pid`` *last* sample wins
    within a process and distinct processes sum — e.g. merged
    ``em.trace_cache.entries`` is total cache residency across the pool.
    """
    ordered = list(samples)
    merged_metrics = MetricsSnapshot.empty()
    for sample in ordered:
        merged_metrics = merged_metrics.merged(sample.metrics)
    # Gauge correction: replace the max-reduction with per-pid-last + sum.
    last_by_pid: Dict[int, ObsSample] = {}
    for sample in ordered:
        last_by_pid[sample.pid] = sample
    gauges: Dict[str, float] = {}
    for sample in last_by_pid.values():
        for name, value in sample.metrics.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
    merged_metrics = MetricsSnapshot(
        counters=merged_metrics.counters,
        gauges=gauges,
        histograms=merged_metrics.histograms,
    )
    spans = merge_span_summaries(sample.spans for sample in ordered)
    return ObsSample(metrics=merged_metrics, spans=spans, pid=os.getpid())


# ----------------------------------------------------------------------
# Metadata
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def _git_revision() -> Optional[str]:
    """The repo's HEAD commit, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


def run_metadata() -> dict:
    """Environment fingerprint stored in every run record."""
    numpy_version: Optional[str]
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "git": _git_revision(),
        "pid": os.getpid(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else None,
    }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config payloads to JSON-native values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        # Sets iterate in hash order, which varies with PYTHONHASHSEED;
        # canonicalise so identical configs serialise identically.
        return sorted((_jsonable(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        try:
            return _jsonable(item())
        except Exception:
            pass
    return str(value)


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------
class RunRecorder:
    """Context manager assembling one run record around an experiment body.

    Usage (inside an experiment driver)::

        with RunRecorder("coverage_suite", config={...}, path=record_to,
                         jobs=jobs) as recorder:
            results, samples = run_parallel(task, tasks, jobs=jobs,
                                            collect_obs=True)
            recorder.add_worker_samples(samples)

    On exit the recorder computes the parent process's metrics/span delta
    over the body, merges the worker samples in, and — when ``path`` is
    set — appends the finished record as one JSONL line.  The record is
    always available afterwards as ``recorder.record``.
    """

    def __init__(
        self,
        experiment: str,
        config: Optional[Mapping[str, Any]] = None,
        path: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        seeds: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.experiment = experiment
        self.config = dict(config or {})
        self.path = None if path is None else Path(path)
        self.jobs = jobs
        self.seeds = dict(seeds or {})
        self.record: Optional[dict] = None
        self._worker_samples: List[ObsSample] = []
        self._request_traces: Dict[str, List[SpanRecord]] = {}
        self._before: Optional[ObsSample] = None
        self._t0 = 0.0

    def __enter__(self) -> "RunRecorder":
        self._before = current_sample()
        self._t0 = time.perf_counter()
        return self

    def add_worker_samples(self, samples: Sequence[ObsSample]) -> None:
        """Attach per-task deltas returned by ``run_parallel(collect_obs=True)``."""
        self._worker_samples.extend(samples)

    def add_request_traces(
        self, traces: Mapping[str, Sequence[SpanRecord]]
    ) -> None:
        """Attach per-request stitched span timelines (schema v2).

        ``traces`` maps request ids to their
        :class:`~repro.obs.tracing.SpanRecord` sequences — typically a
        :meth:`~repro.obs.context.RequestTraceStore.drain` from the
        serving layer, already merged across the event-loop process and
        any pool workers.  Calling repeatedly extends per-request lists.
        """
        for request_id, records in traces.items():
            self._request_traces.setdefault(str(request_id), []).extend(records)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None or self._before is None:
            return None
        wall_s = time.perf_counter() - self._t0
        parent_delta = current_sample().delta(self._before)
        merged = merge_samples([parent_delta, *self._worker_samples])
        self.record = {
            "schema_version": SCHEMA_VERSION,
            "experiment": self.experiment,
            # reprolint: disable=RPL003 -- archival metadata: records when a
            # run happened; never read back into any computation.
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
            "wall_s": wall_s,
            "jobs": self.jobs,
            "workers": len({s.pid for s in self._worker_samples}),
            "config": _jsonable(self.config),
            "seeds": _jsonable(self.seeds),
            "observability_enabled": enabled(),
            "metrics": merged.metrics.as_dict(),
            "spans": {
                name: summary.as_dict()
                for name, summary in sorted(merged.spans.items())
            },
            "request_traces": {
                request_id: [record.as_dict() for record in records]
                for request_id, records in sorted(self._request_traces.items())
            },
            "meta": run_metadata(),
        }
        if self.path is not None:
            append_record(self.path, self.record)
        return None


# ----------------------------------------------------------------------
# JSONL I/O
# ----------------------------------------------------------------------
def append_record(path: Union[str, Path], record: dict) -> None:
    """Append one record as a JSON line (parent directories created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_records(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL run-record file (blank lines skipped)."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from error
    return records


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def _check(errors: List[str], condition: bool, message: str) -> bool:
    if not condition:
        errors.append(message)
    return condition


def _validate_request_traces(errors: List[str], traces: Any) -> None:
    """Validate the v2 ``request_traces`` span-stitching section."""
    if not _check(
        errors, isinstance(traces, dict), "request_traces must be an object"
    ):
        return
    for request_id, records in traces.items():
        label = f"request_traces[{request_id!r}]"
        if not _check(
            errors, isinstance(records, list), f"{label} must be a list"
        ):
            continue
        span_ids = set()
        for index, span in enumerate(records):
            where = f"{label}[{index}]"
            if not _check(
                errors, isinstance(span, dict), f"{where} must be an object"
            ):
                continue
            _check(
                errors,
                isinstance(span.get("name"), str) and span.get("name"),
                f"{where}.name must be a non-empty string",
            )
            span_id = span.get("span_id")
            if _check(
                errors,
                isinstance(span_id, str) and bool(span_id),
                f"{where}.span_id must be a non-empty string",
            ):
                span_ids.add(span_id)
            parent_id = span.get("parent_id")
            _check(
                errors,
                parent_id is None or (isinstance(parent_id, str) and parent_id),
                f"{where}.parent_id must be null or a non-empty string",
            )
            _check(
                errors,
                span.get("request_id") == request_id,
                f"{where}.request_id must equal its key {request_id!r}",
            )
            for field in ("start_s", "duration_s"):
                _check(
                    errors,
                    isinstance(span.get(field), (int, float))
                    and not isinstance(span.get(field), bool),
                    f"{where}.{field} must be a number",
                )
            _check(
                errors,
                isinstance(span.get("pid"), int) and span.get("pid", -1) >= 0,
                f"{where}.pid must be a non-negative integer",
            )
        for index, span in enumerate(records):
            if not isinstance(span, dict):
                continue
            parent_id = span.get("parent_id")
            if isinstance(parent_id, str) and parent_id:
                _check(
                    errors,
                    parent_id != span.get("span_id"),
                    f"{label}[{index}] is its own parent",
                )


def validate_record(record: Any) -> List[str]:
    """Validate one run record against its declared schema version.

    Accepts every version in :data:`SUPPORTED_SCHEMA_VERSIONS` — v1
    (no ``request_traces``) and v2 — so old record files stay readable.
    Returns a list of human-readable problems (empty = valid).  Kept as a
    hand-rolled checker so the repo needs no jsonschema dependency; CI
    runs it over a freshly emitted record every build.
    """
    errors: List[str] = []
    if not _check(errors, isinstance(record, dict), "record must be a JSON object"):
        return errors
    version = record.get("schema_version")
    _check(
        errors,
        version in SUPPORTED_SCHEMA_VERSIONS,
        f"schema_version must be one of {SUPPORTED_SCHEMA_VERSIONS}, "
        f"got {version!r}",
    )
    if version == 1:
        _check(
            errors,
            "request_traces" not in record,
            "request_traces requires schema_version 2",
        )
    elif version == SCHEMA_VERSION and "request_traces" in record:
        _validate_request_traces(errors, record.get("request_traces"))
    _check(
        errors,
        isinstance(record.get("experiment"), str) and record.get("experiment"),
        "experiment must be a non-empty string",
    )
    _check(
        errors,
        isinstance(record.get("wall_s"), (int, float))
        and record.get("wall_s", -1) >= 0,
        "wall_s must be a non-negative number",
    )
    _check(
        errors,
        record.get("jobs") is None or isinstance(record.get("jobs"), int),
        "jobs must be an integer or null",
    )
    _check(
        errors,
        isinstance(record.get("workers"), int) and record.get("workers", -1) >= 0,
        "workers must be a non-negative integer",
    )
    _check(errors, isinstance(record.get("config"), dict), "config must be an object")
    _check(errors, isinstance(record.get("seeds"), dict), "seeds must be an object")
    _check(
        errors,
        isinstance(record.get("created_at"), str),
        "created_at must be a string",
    )
    metrics = record.get("metrics")
    if _check(errors, isinstance(metrics, dict), "metrics must be an object"):
        for section in ("counters", "gauges", "histograms"):
            _check(
                errors,
                isinstance(metrics.get(section), dict),
                f"metrics.{section} must be an object",
            )
        for name, value in (metrics.get("counters") or {}).items():
            _check(
                errors,
                isinstance(value, int),
                f"metrics.counters[{name!r}] must be an integer",
            )
        for name, state in (metrics.get("histograms") or {}).items():
            if not _check(
                errors,
                isinstance(state, dict),
                f"metrics.histograms[{name!r}] must be an object",
            ):
                continue
            edges = state.get("edges")
            counts = state.get("counts")
            ok = _check(
                errors,
                isinstance(edges, list) and isinstance(counts, list),
                f"metrics.histograms[{name!r}] needs edges and counts lists",
            )
            if ok:
                _check(
                    errors,
                    len(counts) == len(edges) + 1,
                    f"metrics.histograms[{name!r}]: counts must have "
                    f"len(edges)+1 entries",
                )
                _check(
                    errors,
                    all(isinstance(c, int) and c >= 0 for c in counts),
                    f"metrics.histograms[{name!r}]: counts must be "
                    f"non-negative integers",
                )
            _check(
                errors,
                isinstance(state.get("count"), int),
                f"metrics.histograms[{name!r}].count must be an integer",
            )
    spans = record.get("spans")
    if _check(errors, isinstance(spans, dict), "spans must be an object"):
        for name, summary in spans.items():
            if not _check(
                errors,
                isinstance(summary, dict),
                f"spans[{name!r}] must be an object",
            ):
                continue
            _check(
                errors,
                isinstance(summary.get("count"), int)
                and summary.get("count", -1) >= 0,
                f"spans[{name!r}].count must be a non-negative integer",
            )
            _check(
                errors,
                isinstance(summary.get("total_s"), (int, float)),
                f"spans[{name!r}].total_s must be a number",
            )
    meta = record.get("meta")
    if _check(errors, isinstance(meta, dict), "meta must be an object"):
        _check(
            errors,
            isinstance(meta.get("python"), str),
            "meta.python must be a string",
        )
    return errors
