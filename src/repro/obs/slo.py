"""Declarative SLOs: latency/rate objectives, rolling windows, burn rates.

An *objective* is a predicate over a metrics snapshot:

* :class:`LatencyObjective` — "quantile ``q`` of histogram ``metric`` is
  at most ``threshold_s``" (e.g. p95 of
  ``serve.evaluate.request_latency_s`` under 50 ms);
* :class:`RateObjective` — "counter ``numerator`` over counter
  ``denominator`` is at most ``budget``" (e.g. rejections under 1% of
  requests).

Objectives parse from compact spec strings (:func:`parse_slo`)::

    p95:serve.evaluate.request_latency_s<0.05
    p99:evaluate<0.1                # bare word expands to the serve
                                    # per-type latency histogram
    rate:serve.rejections/serve.requests<0.01

A :class:`SloPolicy` bundles objectives and evaluates them against any
snapshot — a live registry, a merged run record, or a rolling window.
:class:`SloEngine` maintains the rolling window: feed it timestamped
snapshots (the telemetry streamer's cadence is a natural clock) and it
evaluates the policy over the *delta* between the window's edges, so a
long-running service is judged on recent behaviour, not its lifetime
average.

Every status carries a **burn rate**: how fast the objective's error
budget is being consumed, normalised so ``1.0`` means "exactly at
budget".  For a latency objective the budget is the tolerated tail mass
``1 - q`` and the burn rate is ``(fraction of observations over the
threshold) / (1 - q)``; for a rate objective it is simply
``ratio / budget``.  Values above 1 mean the objective is being violated
at that multiple of its allowance.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence, Tuple, Union

from collections import deque

from .export import histogram_quantile
from .metrics import HistogramState, MetricsSnapshot

__all__ = [
    "LatencyObjective",
    "RateObjective",
    "SloEngine",
    "SloPolicy",
    "SloStatus",
    "parse_slo",
]

#: Shorthand expansion for latency specs: a bare request-type word (no
#: dots) names the serving layer's per-type latency histogram.
_TYPE_METRIC_TEMPLATE = "serve.{kind}.request_latency_s"

_LATENCY_SPEC = re.compile(
    r"^p(?P<quantile>\d+(?:\.\d+)?):(?P<metric>[a-z][a-z0-9_.]*)"
    r"<=?(?P<threshold>[0-9.eE+-]+)$"
)
_RATE_SPEC = re.compile(
    r"^rate:(?P<numerator>[a-z][a-z0-9_.]*)/(?P<denominator>[a-z][a-z0-9_.]*)"
    r"<=?(?P<budget>[0-9.eE+-]+)$"
)


@dataclass(frozen=True)
class SloStatus:
    """The outcome of evaluating one objective against one snapshot.

    ``value`` is the observed quantity (a latency in seconds, or a
    ratio); ``ok`` is the pass/fail verdict; ``burn_rate`` is the error
    budget consumption multiple (see module docstring).  Objectives with
    no observations yet pass vacuously with ``value = nan`` and zero
    burn — an idle service violates nothing.
    """

    objective: str
    kind: str
    value: float
    threshold: float
    ok: bool
    burn_rate: float

    def describe(self) -> str:
        value = "n/a" if math.isnan(self.value) else f"{self.value:.6g}"
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.objective}: {verdict} "
            f"(observed {value}, threshold {self.threshold:.6g}, "
            f"burn {self.burn_rate:.2f}x)"
        )


def _tail_fraction(state: HistogramState, threshold: float) -> float:
    """Estimated fraction of observations strictly above ``threshold``."""
    if state.count <= 0:
        return 0.0
    if threshold >= state.max:
        return 0.0
    if threshold < state.min:
        return 1.0
    above = 0.0
    for index, bin_count in enumerate(state.counts):
        if bin_count <= 0:
            continue
        if index == 0:
            lo, hi = state.min, state.edges[0]
        elif index == len(state.edges):
            lo, hi = state.edges[-1], state.max
        else:
            lo, hi = state.edges[index - 1], state.edges[index]
        lo = max(lo, state.min)
        hi = min(hi, state.max)
        if threshold < lo:
            above += bin_count
        elif threshold < hi:
            above += bin_count * (hi - threshold) / (hi - lo)
    return min(1.0, above / state.count)


@dataclass(frozen=True)
class LatencyObjective:
    """``quantile`` of histogram ``metric`` must not exceed ``threshold_s``."""

    metric: str
    quantile: float
    threshold_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.threshold_s <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold_s}")

    @property
    def name(self) -> str:
        return f"p{self.quantile * 100:g}:{self.metric}<{self.threshold_s:g}"

    def evaluate(self, snapshot: MetricsSnapshot) -> SloStatus:
        state = snapshot.histograms.get(self.metric)
        if state is None or state.count <= 0:
            return SloStatus(
                objective=self.name,
                kind="latency",
                value=math.nan,
                threshold=self.threshold_s,
                ok=True,
                burn_rate=0.0,
            )
        observed = histogram_quantile(state, self.quantile)
        budget = 1.0 - self.quantile
        burn = _tail_fraction(state, self.threshold_s) / budget
        return SloStatus(
            objective=self.name,
            kind="latency",
            value=observed,
            threshold=self.threshold_s,
            ok=bool(observed <= self.threshold_s),
            burn_rate=burn,
        )

    def evaluate_latencies(self, latencies_s: Sequence[float]) -> SloStatus:
        """Evaluate against raw latency samples (loadgen results).

        Uses the exact nearest-rank quantile of the samples — no binning
        error — so offline load reports judge the true distribution.
        """
        values = sorted(v for v in latencies_s if not math.isnan(v))
        if not values:
            return SloStatus(
                objective=self.name,
                kind="latency",
                value=math.nan,
                threshold=self.threshold_s,
                ok=True,
                burn_rate=0.0,
            )
        rank = max(0, math.ceil(self.quantile * len(values)) - 1)
        observed = values[rank]
        over = sum(1 for v in values if v > self.threshold_s)
        burn = (over / len(values)) / (1.0 - self.quantile)
        return SloStatus(
            objective=self.name,
            kind="latency",
            value=observed,
            threshold=self.threshold_s,
            ok=bool(observed <= self.threshold_s),
            burn_rate=burn,
        )


@dataclass(frozen=True)
class RateObjective:
    """``numerator / denominator`` (counters) must not exceed ``budget``."""

    numerator: str
    denominator: str
    budget: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget <= 1.0:
            raise ValueError(f"budget must be in [0, 1], got {self.budget}")

    @property
    def name(self) -> str:
        return f"rate:{self.numerator}/{self.denominator}<{self.budget:g}"

    def _status(self, numerator: float, denominator: float) -> SloStatus:
        if denominator <= 0:
            return SloStatus(
                objective=self.name,
                kind="rate",
                value=math.nan,
                threshold=self.budget,
                ok=True,
                burn_rate=0.0,
            )
        ratio = numerator / denominator
        if self.budget > 0:
            burn = ratio / self.budget
        else:
            burn = math.inf if ratio > 0 else 0.0
        return SloStatus(
            objective=self.name,
            kind="rate",
            value=ratio,
            threshold=self.budget,
            ok=bool(ratio <= self.budget),
            burn_rate=burn,
        )

    def evaluate(self, snapshot: MetricsSnapshot) -> SloStatus:
        return self._status(
            float(snapshot.counters.get(self.numerator, 0)),
            float(snapshot.counters.get(self.denominator, 0)),
        )

    def evaluate_counts(self, numerator: int, denominator: int) -> SloStatus:
        """Evaluate against explicit event counts (loadgen results)."""
        return self._status(float(numerator), float(denominator))


Objective = Union[LatencyObjective, RateObjective]


def parse_slo(spec: str) -> Objective:
    """Parse one objective from its compact spec string.

    ``pQ:metric<threshold`` makes a :class:`LatencyObjective` (``Q`` in
    percent, e.g. ``p99``; a bare metric word without dots expands to
    ``serve.<word>.request_latency_s``); ``rate:num/den<budget`` makes a
    :class:`RateObjective`.  ``<=`` is accepted as a synonym for ``<``.
    """
    text = spec.strip()
    match = _LATENCY_SPEC.match(text)
    if match is not None:
        metric = match.group("metric")
        if "." not in metric:
            metric = _TYPE_METRIC_TEMPLATE.format(kind=metric)
        return LatencyObjective(
            metric=metric,
            quantile=float(match.group("quantile")) / 100.0,
            threshold_s=float(match.group("threshold")),
        )
    match = _RATE_SPEC.match(text)
    if match is not None:
        return RateObjective(
            numerator=match.group("numerator"),
            denominator=match.group("denominator"),
            budget=float(match.group("budget")),
        )
    raise ValueError(
        f"unparseable SLO spec {spec!r} "
        "(want 'pQ:metric<seconds' or 'rate:num/den<budget')"
    )


class SloPolicy:
    """An ordered bundle of objectives evaluated together."""

    def __init__(self, objectives: Iterable[Objective]) -> None:
        self.objectives: Tuple[Objective, ...] = tuple(objectives)

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "SloPolicy":
        return cls(parse_slo(spec) for spec in specs)

    def __len__(self) -> int:
        return len(self.objectives)

    def evaluate(self, snapshot: MetricsSnapshot) -> List[SloStatus]:
        return [objective.evaluate(snapshot) for objective in self.objectives]

    def violations(self, snapshot: MetricsSnapshot) -> List[SloStatus]:
        return [s for s in self.evaluate(snapshot) if not s.ok]


class SloEngine:
    """Rolling-window SLO evaluation over timestamped snapshots.

    Feed it ``(t_s, snapshot)`` observations on any monotonic clock
    (telemetry uptime is the natural choice).  :meth:`evaluate` judges
    the policy on the *delta* between the oldest retained observation
    and the newest — counters and histogram bins subtract exactly, so
    the window holds only its two edges' worth of derived state while
    covering every event between them.  Observations older than
    ``window_s`` are evicted, always keeping at least one as the
    baseline edge.
    """

    def __init__(self, policy: SloPolicy, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.policy = policy
        self.window_s = window_s
        self._samples: Deque[Tuple[float, MetricsSnapshot]] = deque()

    def observe(self, t_s: float, snapshot: MetricsSnapshot) -> None:
        self._samples.append((float(t_s), snapshot))
        horizon = float(t_s) - self.window_s
        while len(self._samples) > 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()

    def window_snapshot(self) -> Optional[MetricsSnapshot]:
        """The delta snapshot across the current window (None if empty)."""
        if not self._samples:
            return None
        if len(self._samples) == 1:
            return self._samples[0][1]
        newest = self._samples[-1][1]
        oldest = self._samples[0][1]
        return newest.delta(oldest)

    def evaluate(self) -> List[SloStatus]:
        snapshot = self.window_snapshot()
        if snapshot is None:
            return [
                objective.evaluate(MetricsSnapshot.empty())
                for objective in self.policy.objectives
            ]
        return self.policy.evaluate(snapshot)

    def violations(self) -> List[SloStatus]:
        return [s for s in self.evaluate() if not s.ok]


def evaluate_load_result(
    policy: SloPolicy,
    latencies_s: Sequence[float],
    completed: int,
    rejected: int,
    failed: int,
) -> List[SloStatus]:
    """Judge a load run's outcome against a policy.

    Latency objectives use the exact sample quantiles of the timed
    latencies; rate objectives map the serving counter names onto the
    run's event counts (rejections, errors, requests).  Counters the
    mapping does not know pass vacuously (no data).
    """
    total = completed + rejected + failed
    counts = {
        "serve.requests": total,
        "serve.rejections": rejected,
        "serve.errors": failed,
    }
    statuses: List[SloStatus] = []
    for objective in policy.objectives:
        if isinstance(objective, LatencyObjective):
            statuses.append(objective.evaluate_latencies(latencies_s))
        else:
            statuses.append(
                objective.evaluate_counts(
                    counts.get(objective.numerator, 0),
                    counts.get(objective.denominator, 0),
                )
            )
    return statuses


__all__.append("evaluate_load_result")
