"""Lightweight span tracer: nested wall-clock phases, ring-buffered.

Spans mark the coarse phases of a run — a geometry trace, a configuration
sweep, one parallel task — with monotonic (``time.perf_counter``) timings
and parent/child nesting, so ``repro report`` can render a per-phase
wall-clock breakdown.  Two properties keep tracing safe for a
reproducibility-obsessed codebase:

* spans live only at *phase* boundaries, never inside seeded hot loops,
  and read no random streams — results are bit-identical with tracing on
  or off (:func:`repro.obs.metrics.set_enabled` disables the clock reads
  entirely);
* completed spans land in a bounded ring buffer (old spans fall off), and
  a cumulative per-name aggregate (count, total, min, max) is maintained
  separately so summaries never lose data to the ring.

Aggregates are plain value objects (:class:`SpanSummary`): the parallel
runner ships each worker's aggregate delta back with its results, and
merging is count/total addition plus min/max reduction — exact at the run
level in any merge order.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

from .metrics import enabled

__all__ = [
    "SpanRecord",
    "SpanSummary",
    "SpanTracer",
    "global_tracer",
    "reset_tracing",
    "merge_span_summaries",
]

#: Completed spans kept in the ring buffer (per process).
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    ``start_s`` is monotonic time relative to the tracer's epoch (its
    construction), so records from one process order and nest correctly;
    they are not comparable across processes.
    """

    name: str
    start_s: float
    duration_s: float
    parent: Optional[str]
    depth: int


@dataclass(frozen=True)
class SpanSummary:
    """Cumulative per-name aggregate of completed spans."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float

    @classmethod
    def empty(cls, name: str) -> "SpanSummary":
        return cls(name=name, count=0, total_s=0.0, min_s=math.inf, max_s=-math.inf)

    def merged(self, other: "SpanSummary") -> "SpanSummary":
        return SpanSummary(
            name=self.name,
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )

    def delta(self, earlier: "SpanSummary") -> "SpanSummary":
        """Spans completed since ``earlier`` (same-tracer summary).

        Count and total subtract exactly; ``min_s``/``max_s`` carry the
        cumulative window, which still reduces to the true run extrema
        when deltas are merged (min-of-mins, max-of-maxes).
        """
        return SpanSummary(
            name=self.name,
            count=self.count - earlier.count,
            total_s=self.total_s - earlier.total_s,
            min_s=self.min_s,
            max_s=self.max_s,
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "SpanSummary":
        return cls(
            name=name,
            count=int(data["count"]),
            total_s=float(data["total_s"]),
            min_s=float(data["min_s"]),
            max_s=float(data["max_s"]),
        )


def merge_span_summaries(
    summaries: Iterable[Mapping[str, SpanSummary]],
) -> Dict[str, SpanSummary]:
    """Merge per-name summary maps from several sources (workers, parent)."""
    merged: Dict[str, SpanSummary] = {}
    for source in summaries:
        for name, summary in source.items():
            prior = merged.get(name)
            merged[name] = summary if prior is None else prior.merged(summary)
    return merged


class _SpanContext:
    """The context manager :meth:`SpanTracer.span` hands out.

    Hand-rolled (not ``contextlib``) to keep per-span overhead at two
    ``perf_counter`` calls plus a few attribute writes.
    """

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._tracer._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._tracer._close(self._name, self._start, end)
        return None


class _NullContext:
    """No-op span: zero clock reads when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class SpanTracer:
    """Context-manager span tracer with a bounded ring-buffer exporter."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._epoch = time.perf_counter()
        self._buffer: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: List[str] = []
        self._aggregates: Dict[str, SpanSummary] = {}

    def span(self, name: str) -> object:
        """A context manager timing one phase.

        Nesting is tracked via the open-span stack: a span opened while
        another is open records that span as its parent.  When
        observability is disabled the returned context performs no clock
        reads at all.
        """
        if not enabled():
            return _NULL_CONTEXT
        return _SpanContext(self, name)

    def _close(self, name: str, start: float, end: float) -> None:
        self._stack.pop()
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            start_s=start - self._epoch,
            duration_s=end - start,
            parent=parent,
            depth=len(self._stack),
        )
        self._buffer.append(record)
        duration = record.duration_s
        prior = self._aggregates.get(name)
        if prior is None:
            prior = SpanSummary.empty(name)
        self._aggregates[name] = SpanSummary(
            name=name,
            count=prior.count + 1,
            total_s=prior.total_s + duration,
            min_s=min(prior.min_s, duration),
            max_s=max(prior.max_s, duration),
        )

    def records(self) -> Tuple[SpanRecord, ...]:
        """The ring buffer's current contents (oldest first)."""
        return tuple(self._buffer)

    def summaries(self) -> Dict[str, SpanSummary]:
        """Cumulative per-name aggregates (immune to ring eviction)."""
        return dict(self._aggregates)

    def reset(self) -> None:
        """Drop all records and aggregates (open spans keep nesting)."""
        self._buffer.clear()
        self._aggregates.clear()
        self._epoch = time.perf_counter()


_TRACER = SpanTracer()


def global_tracer() -> SpanTracer:
    """The process-wide tracer all subsystems emit spans into."""
    return _TRACER


def reset_tracing() -> None:
    """Clear the global tracer (benchmarks use this between phases)."""
    _TRACER.reset()
