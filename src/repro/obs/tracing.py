"""Lightweight span tracer: nested wall-clock phases, ring-buffered.

Spans mark the coarse phases of a run — a geometry trace, a configuration
sweep, one parallel task — with monotonic (``time.perf_counter``) timings
and parent/child nesting, so ``repro report`` can render a per-phase
wall-clock breakdown.  Two properties keep tracing safe for a
reproducibility-obsessed codebase:

* spans live only at *phase* boundaries, never inside seeded hot loops,
  and read no random streams — results are bit-identical with tracing on
  or off (:func:`repro.obs.metrics.set_enabled` disables the clock reads
  entirely);
* completed spans land in a bounded ring buffer (old spans fall off), and
  a cumulative per-name aggregate (count, total, min, max) is maintained
  separately so summaries never lose data to the ring.

Aggregates are plain value objects (:class:`SpanSummary`): the parallel
runner ships each worker's aggregate delta back with its results, and
merging is count/total addition plus min/max reduction — exact at the run
level in any merge order.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .metrics import enabled

__all__ = [
    "SpanRecord",
    "SpanSummary",
    "SpanTracer",
    "global_tracer",
    "new_span_id",
    "reset_tracing",
    "merge_span_summaries",
]

#: Completed spans kept in the ring buffer (per process).
DEFAULT_CAPACITY = 4096

#: Per-process monotonic span-id sequence.  Ids are ``"<pid:x>-<seq:x>"``
#: so spans minted by a pool worker can never collide with the parent's —
#: the property cross-process request stitching rests on.
_SPAN_SEQ = 0


def new_span_id() -> str:
    """Mint a process-unique span id (``"<pid hex>-<seq hex>"``)."""
    global _SPAN_SEQ
    _SPAN_SEQ += 1
    return f"{os.getpid():x}-{_SPAN_SEQ:x}"


@dataclass(slots=True)
class SpanRecord:
    """One completed span.

    ``start_s`` is monotonic time relative to the tracer's epoch (its
    construction), so records from one process order and nest correctly;
    they are not comparable across processes.  The stitching fields
    (``span_id``/``parent_id``/``request_id``/``pid``) are populated for
    request-scoped spans (:func:`repro.obs.context.request_span`): a
    request's timeline reconstructs from the ``parent_id`` chain alone,
    which stays valid across process boundaries where ``start_s`` does
    not.

    Deliberately *not* frozen: records are constructed on the serving
    hot path (several per traced request), and a frozen dataclass pays
    an ``object.__setattr__`` per field on every construction.  Treat
    instances as immutable by convention.
    """

    name: str
    start_s: float
    duration_s: float
    parent: Optional[str]
    depth: int
    span_id: str = ""
    parent_id: Optional[str] = None
    request_id: Optional[str] = None
    pid: int = 0

    def as_dict(self) -> dict:
        """JSON/wire form (the run-record ``request_traces`` entry)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "parent": self.parent,
            "depth": self.depth,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "request_id": self.request_id,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            parent=None if data.get("parent") is None else str(data["parent"]),
            depth=int(data.get("depth", 0)),
            span_id=str(data.get("span_id", "")),
            parent_id=(
                None
                if data.get("parent_id") is None
                else str(data["parent_id"])
            ),
            request_id=(
                None
                if data.get("request_id") is None
                else str(data["request_id"])
            ),
            pid=int(data.get("pid", 0)),
        )


@dataclass(frozen=True)
class SpanSummary:
    """Cumulative per-name aggregate of completed spans."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float

    @classmethod
    def empty(cls, name: str) -> "SpanSummary":
        return cls(name=name, count=0, total_s=0.0, min_s=math.inf, max_s=-math.inf)

    def merged(self, other: "SpanSummary") -> "SpanSummary":
        return SpanSummary(
            name=self.name,
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )

    def delta(self, earlier: "SpanSummary") -> "SpanSummary":
        """Spans completed since ``earlier`` (same-tracer summary).

        Count and total subtract exactly; ``min_s``/``max_s`` carry the
        cumulative window, which still reduces to the true run extrema
        when deltas are merged (min-of-mins, max-of-maxes).
        """
        return SpanSummary(
            name=self.name,
            count=self.count - earlier.count,
            total_s=self.total_s - earlier.total_s,
            min_s=self.min_s,
            max_s=self.max_s,
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "SpanSummary":
        return cls(
            name=name,
            count=int(data["count"]),
            total_s=float(data["total_s"]),
            min_s=float(data["min_s"]),
            max_s=float(data["max_s"]),
        )


def merge_span_summaries(
    summaries: Iterable[Mapping[str, SpanSummary]],
) -> Dict[str, SpanSummary]:
    """Merge per-name summary maps from several sources (workers, parent)."""
    merged: Dict[str, SpanSummary] = {}
    for source in summaries:
        for name, summary in source.items():
            prior = merged.get(name)
            merged[name] = summary if prior is None else prior.merged(summary)
    return merged


class _SpanContext:
    """The context manager :meth:`SpanTracer.span` hands out.

    Hand-rolled (not ``contextlib``) to keep per-span overhead at two
    ``perf_counter`` calls plus a few attribute writes.
    """

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._tracer._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._tracer._close(self._name, self._start, end)
        return None


class _NullContext:
    """No-op span: zero clock reads when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class SpanTracer:
    """Context-manager span tracer with a bounded ring-buffer exporter."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._epoch = time.perf_counter()
        self._buffer: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: List[str] = []
        # name -> [count, total_s, min_s, max_s]; mutated in place on the
        # hot path, materialized into SpanSummary values on demand.
        self._aggregates: Dict[str, List[float]] = {}
        self._sinks: List[Callable[[SpanRecord], None]] = []

    def span(self, name: str) -> object:
        """A context manager timing one phase.

        Nesting is tracked via the open-span stack: a span opened while
        another is open records that span as its parent.  When
        observability is disabled the returned context performs no clock
        reads at all.
        """
        if not enabled():
            return _NULL_CONTEXT
        return _SpanContext(self, name)

    def _close(self, name: str, start: float, end: float) -> None:
        self._stack.pop()
        parent = self._stack[-1] if self._stack else None
        self.emit(
            SpanRecord(
                name=name,
                start_s=start - self._epoch,
                duration_s=end - start,
                parent=parent,
                depth=len(self._stack),
            )
        )

    def emit(self, record: SpanRecord) -> None:
        """Record one completed span: ring buffer, aggregates, sinks.

        The entry request-scoped spans (and cross-process re-imports of
        worker spans) use — they manage their own parent links through
        explicit ``span_id``/``parent_id`` fields instead of the tracer's
        name stack, which only pairs correctly for code that cannot
        interleave (the asyncio service interleaves batches across
        ``await`` points, so per-request spans must not share the stack).
        """
        self._buffer.append(record)
        duration = record.duration_s
        stats = self._aggregates.get(record.name)
        if stats is None:
            self._aggregates[record.name] = [1, duration, duration, duration]
        else:
            stats[0] += 1
            stats[1] += duration
            if duration < stats[2]:
                stats[2] = duration
            if duration > stats[3]:
                stats[3] = duration
        for sink in self._sinks:
            sink(record)

    @property
    def epoch(self) -> float:
        """The monotonic instant ``start_s`` values are relative to."""
        return self._epoch

    def add_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        """Subscribe ``sink`` to every completed span (see ``emit``)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        """Unsubscribe a sink added with :meth:`add_sink` (idempotent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def records(self) -> Tuple[SpanRecord, ...]:
        """The ring buffer's current contents (oldest first)."""
        return tuple(self._buffer)

    def summaries(self) -> Dict[str, SpanSummary]:
        """Cumulative per-name aggregates (immune to ring eviction)."""
        return {
            name: SpanSummary(
                name=name,
                count=int(stats[0]),
                total_s=stats[1],
                min_s=stats[2],
                max_s=stats[3],
            )
            for name, stats in self._aggregates.items()
        }

    def reset(self) -> None:
        """Drop all records and aggregates (open spans keep nesting)."""
        self._buffer.clear()
        self._aggregates.clear()
        self._epoch = time.perf_counter()


_TRACER = SpanTracer()


def global_tracer() -> SpanTracer:
    """The process-wide tracer all subsystems emit spans into."""
    return _TRACER


def reset_tracing(clear: bool = False) -> None:
    """Clear the global tracer (benchmarks use this between phases).

    ``clear=True`` replaces the tracer object itself (dropping sinks test
    code may have attached), mirroring ``reset_metrics(clear=True)``.
    """
    global _TRACER
    if clear:
        _TRACER = SpanTracer()
    else:
        _TRACER.reset()
