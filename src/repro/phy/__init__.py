"""Wi-Fi-like OFDM physical layer.

The 64-subcarrier, 20 MHz OFDM PHY the paper's endpoints transmit:
constellations, convolutional coding, interleaving, framing with training
sequences, channel estimation, equalization, SNR metrics and the MCS/rate
ladder — plus an end-to-end link simulator over the EM substrate.
"""

from .channel_est import ChannelEstimate, estimate_channel
from .coding import (
    CODE_RATE_1_2,
    CODE_RATE_2_3,
    CODE_RATE_3_4,
    ConvolutionalCode,
    get_code,
)
from .equalizer import mmse, zero_forcing
from .frame import FrameFormat, RxResult, TxFrame, build_frame, receive_frame
from .interleaver import deinterleave, interleave, interleaver_permutation
from .modulation import (
    BPSK,
    MODULATIONS,
    QAM16,
    QAM64,
    QPSK,
    Modulation,
    get_modulation,
)
from .ofdm import DEFAULT_OFDM, OfdmParams
from .preamble import NUM_LTF_REPEATS, ltf_spectrum, ltf_time_domain, stf_time_domain
from .rates import (
    MCS_TABLE,
    Mcs,
    ber_awgn,
    coded_per,
    expected_throughput_mbps,
    select_mcs,
)
from .snr import effective_snr_db, evm, evm_to_snr_db, snr_from_ltf_pair
from .sync import (
    SyncResult,
    correct_cfo,
    detect_packet,
    estimate_cfo,
    fine_timing,
    synchronize,
)
from .transceiver import LinkBudget, simulate_link, transmit_over_channel

__all__ = [
    "ChannelEstimate",
    "estimate_channel",
    "ConvolutionalCode",
    "CODE_RATE_1_2",
    "CODE_RATE_2_3",
    "CODE_RATE_3_4",
    "get_code",
    "mmse",
    "zero_forcing",
    "FrameFormat",
    "TxFrame",
    "RxResult",
    "build_frame",
    "receive_frame",
    "interleave",
    "deinterleave",
    "interleaver_permutation",
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "MODULATIONS",
    "get_modulation",
    "OfdmParams",
    "DEFAULT_OFDM",
    "ltf_spectrum",
    "ltf_time_domain",
    "stf_time_domain",
    "NUM_LTF_REPEATS",
    "Mcs",
    "MCS_TABLE",
    "ber_awgn",
    "coded_per",
    "select_mcs",
    "expected_throughput_mbps",
    "evm",
    "evm_to_snr_db",
    "snr_from_ltf_pair",
    "effective_snr_db",
    "LinkBudget",
    "simulate_link",
    "transmit_over_channel",
    "SyncResult",
    "detect_packet",
    "fine_timing",
    "estimate_cfo",
    "correct_cfo",
    "synchronize",
]
