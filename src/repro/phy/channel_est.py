"""Channel estimation from training symbols.

Least-squares CSI estimation from the LTF repetitions — the operation the
paper's receiver performs on every frame to measure the per-subcarrier
channel that PRESS then reshapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ofdm import OfdmParams
from .preamble import ltf_spectrum

__all__ = ["ChannelEstimate", "estimate_channel"]


@dataclass(frozen=True)
class ChannelEstimate:
    """Estimated CSI on the centred subcarrier grid.

    Attributes
    ----------
    cfr:
        Complex channel estimate per subcarrier (NaN-free; unused bins 0).
    noise_var:
        Estimated complex-noise variance per subcarrier (scalar), from the
        difference of LTF repetitions; ``None`` when only one LTF was seen.
    used_mask:
        Boolean mask of subcarriers the estimate is valid on.
    """

    cfr: np.ndarray
    noise_var: Optional[float]
    used_mask: np.ndarray

    def snr_db(self, floor_db: float = -30.0) -> np.ndarray:
        """Per-subcarrier SNR estimate |H|^2 / noise_var on used bins, in dB.

        Requires a noise-variance estimate (two LTF repetitions).
        Unused bins are reported at ``floor_db``.
        """
        if self.noise_var is None:
            raise ValueError("snr_db requires a noise-variance estimate (>= 2 LTFs)")
        snr = np.full(self.cfr.shape, floor_db)
        used = self.used_mask
        power = np.abs(self.cfr[used]) ** 2
        noise = max(self.noise_var, 1e-30)
        snr[used] = 10.0 * np.log10(np.maximum(power / noise, 10.0 ** (floor_db / 10.0)))
        return snr


def estimate_channel(
    received_ltf_spectra: np.ndarray,
    params: OfdmParams,
) -> ChannelEstimate:
    """Least-squares channel estimate from received LTF spectra.

    Parameters
    ----------
    received_ltf_spectra:
        Array of shape (num_repeats, fft_size): the FFT output for each
        received LTF symbol on the centred grid.
    params:
        OFDM numerology (provides the known transmitted LTF).

    Returns
    -------
    ChannelEstimate
        The averaged LS estimate; when two or more repetitions are present,
        the noise variance is estimated from their sample variance.
    """
    spectra = np.atleast_2d(np.asarray(received_ltf_spectra, dtype=complex))
    if spectra.shape[1] != params.fft_size:
        raise ValueError(
            f"expected spectra with {params.fft_size} bins, got {spectra.shape[1]}"
        )
    reference = ltf_spectrum(params)
    used = params.used_mask()
    estimates = np.zeros_like(spectra)
    estimates[:, used] = spectra[:, used] / reference[used]
    cfr = np.zeros(params.fft_size, dtype=complex)
    cfr[used] = estimates[:, used].mean(axis=0)
    noise_var: Optional[float] = None
    if spectra.shape[0] >= 2:
        # Sample variance across repetitions, averaged over used bins.
        # |LTF| = 1 on used bins, so the per-repeat estimate noise equals the
        # per-bin receiver noise.
        deviations = estimates[:, used] - cfr[used][None, :]
        # ddof=1 per bin, then scale: variance of the *single-shot* estimate.
        per_bin = np.sum(np.abs(deviations) ** 2, axis=0) / (spectra.shape[0] - 1)
        noise_var = float(np.mean(per_bin))
    return ChannelEstimate(cfr=cfr, noise_var=noise_var, used_mask=used)
