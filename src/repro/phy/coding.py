"""Convolutional channel coding: the 802.11 K=7 code with Viterbi decoding.

The OFDM links the paper enhances run "OFDM modulation and channel coding"
(§1); a flatter channel lets the code support a higher bit rate.  We
implement the industry-standard rate-1/2, constraint-length-7 convolutional
code with generators (133, 171) octal, the puncturing patterns for rates
2/3 and 3/4, and a vectorised hard/soft-decision Viterbi decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConvolutionalCode",
    "CODE_RATE_1_2",
    "CODE_RATE_2_3",
    "CODE_RATE_3_4",
    "get_code",
]

_GENERATORS_OCTAL = (0o133, 0o171)
_CONSTRAINT_LENGTH = 7

#: Puncturing patterns (over the rate-1/2 mother code's output pairs).
#: Entries are kept-bit masks with period ``len(pattern) // 2`` input bits.
_PUNCTURE_PATTERNS = {
    "1/2": np.array([1, 1], dtype=bool),
    "2/3": np.array([1, 1, 1, 0], dtype=bool),
    "3/4": np.array([1, 1, 1, 0, 0, 1], dtype=bool),
}

_RATE_FRACTIONS = {"1/2": 0.5, "2/3": 2.0 / 3.0, "3/4": 0.75}


def _build_trellis() -> tuple[np.ndarray, np.ndarray]:
    """Precompute next-state and output tables for the (133,171) code.

    Returns
    -------
    next_state:
        ``next_state[state, bit]`` -> following state.
    outputs:
        ``outputs[state, bit]`` -> 2-bit output packed as ``b0*2 + b1``
        where b0 is the generator-133 output.
    """
    memory = _CONSTRAINT_LENGTH - 1
    num_states = 1 << memory
    next_state = np.zeros((num_states, 2), dtype=np.int64)
    outputs = np.zeros((num_states, 2), dtype=np.int64)
    for state in range(num_states):
        for bit in range(2):
            register = (bit << memory) | state
            out = 0
            for generator in _GENERATORS_OCTAL:
                parity = bin(register & generator).count("1") & 1
                out = (out << 1) | parity
            outputs[state, bit] = out
            next_state[state, bit] = register >> 1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_trellis()


@dataclass(frozen=True)
class ConvolutionalCode:
    """The punctured (133, 171) convolutional code.

    Attributes
    ----------
    rate_name:
        One of ``"1/2"``, ``"2/3"``, ``"3/4"``.
    """

    rate_name: str = "1/2"

    def __post_init__(self) -> None:
        if self.rate_name not in _PUNCTURE_PATTERNS:
            known = ", ".join(sorted(_PUNCTURE_PATTERNS))
            raise ValueError(f"unknown code rate {self.rate_name!r}; known: {known}")

    @property
    def rate(self) -> float:
        """Information bits per coded bit."""
        return _RATE_FRACTIONS[self.rate_name]

    @property
    def _pattern(self) -> np.ndarray:
        return _PUNCTURE_PATTERNS[self.rate_name]

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode (and puncture) an information bit array.

        The encoder is zero-terminated: six tail zeros flush the register so
        the decoder can start and end in state 0.  Tail bits are appended
        internally; callers pass only information bits.
        """
        bits = np.asarray(bits, dtype=int).ravel()
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("bits must contain only 0 and 1")
        padded = np.concatenate([bits, np.zeros(_CONSTRAINT_LENGTH - 1, dtype=int)])
        state = 0
        coded = np.empty(2 * padded.size, dtype=int)
        for i, bit in enumerate(padded):
            out = _OUTPUTS[state, bit]
            coded[2 * i] = (out >> 1) & 1
            coded[2 * i + 1] = out & 1
            state = _NEXT_STATE[state, bit]
        return self._puncture(coded)

    def _puncture(self, coded: np.ndarray) -> np.ndarray:
        pattern = self._pattern
        mask = np.resize(pattern, coded.size)
        return coded[mask]

    def _depuncture(self, values: np.ndarray, coded_length: int) -> np.ndarray:
        """Re-insert erasures (0.0 metric contribution) at punctured positions."""
        pattern = self._pattern
        mask = np.resize(pattern, coded_length)
        if int(mask.sum()) != values.size:
            raise ValueError(
                f"expected {int(mask.sum())} punctured values for coded length "
                f"{coded_length}, got {values.size}"
            )
        full = np.zeros(coded_length, dtype=float)
        full[mask] = values
        return full

    def coded_length(self, num_info_bits: int) -> int:
        """Number of transmitted coded bits for ``num_info_bits`` inputs."""
        if num_info_bits < 0:
            raise ValueError(f"num_info_bits must be non-negative, got {num_info_bits}")
        mother = 2 * (num_info_bits + _CONSTRAINT_LENGTH - 1)
        mask = np.resize(self._pattern, mother)
        return int(mask.sum())

    def decode(self, llrs: np.ndarray, num_info_bits: int) -> np.ndarray:
        """Viterbi-decode soft values back to information bits.

        Parameters
        ----------
        llrs:
            Received soft values for the transmitted (punctured) coded bits.
            Positive means bit 0 is more likely (matching
            :meth:`repro.phy.modulation.Modulation.demodulate_soft`).  Hard
            decisions can be passed as ±1.
        num_info_bits:
            Number of information bits to recover (tail bits are stripped).
        """
        llrs = np.asarray(llrs, dtype=float).ravel()
        total_bits = num_info_bits + _CONSTRAINT_LENGTH - 1
        coded_length = 2 * total_bits
        soft = self._depuncture(llrs, coded_length)
        pairs = soft.reshape(-1, 2)
        num_states = _NEXT_STATE.shape[0]
        metric = np.full(num_states, -np.inf)
        metric[0] = 0.0
        history = np.zeros((total_bits, num_states), dtype=np.int8)
        trace_prev = np.zeros((total_bits, num_states), dtype=np.int64)
        # Branch metric: correlate expected bits (0 -> +llr, 1 -> -llr).
        out_b0 = (_OUTPUTS >> 1) & 1  # (states, input-bit)
        out_b1 = _OUTPUTS & 1
        sign_b0 = 1.0 - 2.0 * out_b0
        sign_b1 = 1.0 - 2.0 * out_b1
        for step in range(total_bits):
            llr0, llr1 = pairs[step]
            branch = sign_b0 * llr0 + sign_b1 * llr1  # (states, 2)
            candidate = metric[:, None] + branch  # metric of (state, input)
            new_metric = np.full(num_states, -np.inf)
            chosen_prev = np.zeros(num_states, dtype=np.int64)
            chosen_bit = np.zeros(num_states, dtype=np.int8)
            for bit in range(2):
                targets = _NEXT_STATE[:, bit]
                cand = candidate[:, bit]
                # For each target state keep the best incoming transition.
                order = np.argsort(cand, kind="stable")
                best = np.full(num_states, -np.inf)
                best_src = np.zeros(num_states, dtype=np.int64)
                best[targets[order]] = cand[order]
                best_src[targets[order]] = order
                improve = best > new_metric
                new_metric[improve] = best[improve]
                chosen_prev[improve] = best_src[improve]
                chosen_bit[improve] = bit
            metric = new_metric
            history[step] = chosen_bit
            trace_prev[step] = chosen_prev
        # Traceback from state 0 (zero-terminated).
        state = 0
        decoded = np.zeros(total_bits, dtype=int)
        for step in range(total_bits - 1, -1, -1):
            decoded[step] = history[step, state]
            state = trace_prev[step, state]
        return decoded[:num_info_bits]

    def decode_hard(self, coded_bits: np.ndarray, num_info_bits: int) -> np.ndarray:
        """Viterbi-decode hard bits (0/1) to information bits."""
        coded_bits = np.asarray(coded_bits, dtype=float).ravel()
        return self.decode(1.0 - 2.0 * coded_bits, num_info_bits)


CODE_RATE_1_2 = ConvolutionalCode("1/2")
CODE_RATE_2_3 = ConvolutionalCode("2/3")
CODE_RATE_3_4 = ConvolutionalCode("3/4")


def get_code(rate_name: str) -> ConvolutionalCode:
    """Code instance for a rate name (``"1/2"``, ``"2/3"``, ``"3/4"``)."""
    return ConvolutionalCode(rate_name)
