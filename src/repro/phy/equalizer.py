"""One-tap frequency-domain equalizers (zero-forcing and MMSE)."""

from __future__ import annotations

import numpy as np

__all__ = ["zero_forcing", "mmse"]

_MIN_GAIN = 1e-12


def zero_forcing(symbols: np.ndarray, cfr: np.ndarray) -> np.ndarray:
    """Zero-forcing equalization: divide out the channel per subcarrier.

    Bins where the channel magnitude is (numerically) zero are passed
    through unscaled rather than amplified to infinity.
    """
    symbols = np.asarray(symbols, dtype=complex)
    cfr = np.asarray(cfr, dtype=complex)
    if symbols.shape[-1] != cfr.shape[-1]:
        raise ValueError(
            f"symbol/CFR length mismatch: {symbols.shape[-1]} vs {cfr.shape[-1]}"
        )
    safe = np.where(np.abs(cfr) < _MIN_GAIN, 1.0, cfr)
    return symbols / safe


def mmse(symbols: np.ndarray, cfr: np.ndarray, noise_var: float) -> np.ndarray:
    """MMSE equalization: H* / (|H|^2 + noise_var) per subcarrier.

    Less noise enhancement than zero-forcing inside the deep nulls that the
    PRESS experiments deliberately create and move.
    """
    if noise_var < 0:
        raise ValueError(f"noise_var must be non-negative, got {noise_var}")
    symbols = np.asarray(symbols, dtype=complex)
    cfr = np.asarray(cfr, dtype=complex)
    if symbols.shape[-1] != cfr.shape[-1]:
        raise ValueError(
            f"symbol/CFR length mismatch: {symbols.shape[-1]} vs {cfr.shape[-1]}"
        )
    weight = np.conj(cfr) / (np.abs(cfr) ** 2 + max(noise_var, _MIN_GAIN))
    return symbols * weight
