"""PPDU framing: the full transmit and receive chains.

A frame is STF | LTF x2 | data symbols, mirroring the frames the paper's
WARP transmitter sends (§3.2).  The receive chain estimates CSI from the
LTFs (that estimate is what the PRESS controller consumes), equalizes,
soft-demaps, deinterleaves and Viterbi-decodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .channel_est import ChannelEstimate, estimate_channel
from .coding import ConvolutionalCode
from .equalizer import mmse
from .interleaver import deinterleave, interleave
from .modulation import Modulation
from .ofdm import DEFAULT_OFDM, OfdmParams
from .preamble import NUM_LTF_REPEATS, ltf_time_domain, stf_time_domain

__all__ = ["FrameFormat", "TxFrame", "RxResult", "build_frame", "receive_frame"]


@dataclass(frozen=True)
class FrameFormat:
    """Modulation-and-coding format of a frame.

    Attributes
    ----------
    modulation:
        Constellation for the data subcarriers.
    code:
        Convolutional code (rate 1/2, 2/3 or 3/4).
    params:
        OFDM numerology.
    """

    modulation: Modulation
    code: ConvolutionalCode
    params: OfdmParams = DEFAULT_OFDM

    @property
    def coded_bits_per_symbol(self) -> int:
        """N_CBPS: coded bits carried by one OFDM symbol."""
        return self.params.num_data_subcarriers * self.modulation.bits_per_symbol

    def num_data_symbols(self, num_info_bits: int) -> int:
        """OFDM data symbols needed for ``num_info_bits`` information bits."""
        coded = self.code.coded_length(num_info_bits)
        return -(-coded // self.coded_bits_per_symbol)


@dataclass(frozen=True)
class TxFrame:
    """A transmitted frame: samples plus the metadata needed to decode it."""

    samples: np.ndarray
    info_bits: np.ndarray
    fmt: FrameFormat

    @property
    def num_info_bits(self) -> int:
        return int(self.info_bits.size)


@dataclass(frozen=True)
class RxResult:
    """Output of the receive chain.

    Attributes
    ----------
    bits:
        Decoded information bits.
    channel:
        The CSI estimated from the LTFs.
    bit_errors:
        Errors against the transmitted bits, when they were provided.
    """

    bits: np.ndarray
    channel: ChannelEstimate
    bit_errors: Optional[int] = None

    @property
    def frame_ok(self) -> Optional[bool]:
        """Whether the frame decoded without error (None if unknown)."""
        if self.bit_errors is None:
            return None
        return self.bit_errors == 0


def build_frame(
    info_bits: np.ndarray,
    fmt: FrameFormat,
    include_stf: bool = True,
) -> TxFrame:
    """Encode and modulate information bits into a time-domain frame.

    The coded bit stream is zero-padded to a whole number of OFDM symbols,
    interleaved per symbol and mapped onto the data subcarriers; pilots are
    set to +1.
    """
    info_bits = np.asarray(info_bits, dtype=int).ravel()
    params = fmt.params
    coded = fmt.code.encode(info_bits)
    n_cbps = fmt.coded_bits_per_symbol
    num_symbols = fmt.num_data_symbols(info_bits.size)
    padded = np.zeros(num_symbols * n_cbps, dtype=int)
    padded[: coded.size] = coded
    pieces = [stf_time_domain(params)] if include_stf else []
    pieces.append(ltf_time_domain(params, NUM_LTF_REPEATS))
    for s in range(num_symbols):
        symbol_bits = interleave(
            padded[s * n_cbps : (s + 1) * n_cbps], fmt.modulation.bits_per_symbol
        )
        data = fmt.modulation.modulate(symbol_bits)
        pieces.append(params.to_time_domain(params.place(data)))
    return TxFrame(samples=np.concatenate(pieces), info_bits=info_bits, fmt=fmt)


def receive_frame(
    samples: np.ndarray,
    fmt: FrameFormat,
    num_info_bits: int,
    expected_bits: Optional[np.ndarray] = None,
    has_stf: bool = True,
) -> RxResult:
    """Demodulate and decode a received frame.

    Parameters
    ----------
    samples:
        Received time-domain samples, frame-aligned (frame detection and
        timing recovery are assumed ideal; the paper's testbed time-
        synchronises the radios externally).
    fmt:
        The frame format used by the transmitter.
    num_info_bits:
        Number of information bits to recover.
    expected_bits:
        When given, ``bit_errors`` is computed against these.
    has_stf:
        Whether the frame starts with an STF symbol to skip.
    """
    samples = np.asarray(samples, dtype=complex)
    params = fmt.params
    sym_len = params.symbol_samples
    cursor = sym_len if has_stf else 0
    ltf_spectra = []
    for _ in range(NUM_LTF_REPEATS):
        ltf_spectra.append(params.to_frequency_domain(samples[cursor : cursor + sym_len]))
        cursor += sym_len
    channel = estimate_channel(np.array(ltf_spectra), params)
    noise_var = channel.noise_var if channel.noise_var else 1e-9
    num_symbols = fmt.num_data_symbols(num_info_bits)
    n_cbps = fmt.coded_bits_per_symbol
    data_bins = params.data_bins()
    llrs = np.empty(num_symbols * n_cbps)
    cfr_data = channel.cfr[data_bins]
    for s in range(num_symbols):
        spectrum = params.to_frequency_domain(samples[cursor : cursor + sym_len])
        cursor += sym_len
        equalized = mmse(spectrum[data_bins], cfr_data, noise_var)
        # Post-equalization noise variance per subcarrier for soft demapping:
        # MMSE scales noise by |w|^2 and signal by |wH|; approximate with the
        # effective per-bin SNR, folded into a common scale via ZF-equivalent
        # noise_var / |H|^2.
        gains = np.abs(cfr_data) ** 2
        eff_noise = noise_var / np.maximum(gains, 1e-12)
        bits_per = fmt.modulation.bits_per_symbol
        # LLRs scale as 1/noise_var: demap once at unit variance, then apply
        # the per-subcarrier effective noise.
        soft = fmt.modulation.demodulate_soft(equalized, 1.0)
        soft = soft.reshape(-1, bits_per) / eff_noise[:, None]
        soft = soft.ravel()
        llrs[s * n_cbps : (s + 1) * n_cbps] = deinterleave(
            soft, fmt.modulation.bits_per_symbol
        )
    coded_length = fmt.code.coded_length(num_info_bits)
    bits = fmt.code.decode(llrs[:coded_length], num_info_bits)
    errors = None
    if expected_bits is not None:
        expected = np.asarray(expected_bits, dtype=int).ravel()
        if expected.size != bits.size:
            raise ValueError(
                f"expected_bits has {expected.size} bits but {bits.size} were decoded"
            )
        errors = int(np.sum(bits != expected))
    return RxResult(bits=bits, channel=channel, bit_errors=errors)
