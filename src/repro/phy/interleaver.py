"""Per-OFDM-symbol block interleaver (802.11a style).

The interleaver spreads consecutive coded bits across subcarriers so a
frequency null — exactly what PRESS moves around — does not wipe out a
contiguous run of bits.  It is the two-permutation 802.11a block
interleaver, parameterised by the number of coded bits per symbol.
"""

from __future__ import annotations

import numpy as np

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]

_NUM_COLUMNS = 16


def interleaver_permutation(coded_bits_per_symbol: int, bits_per_subcarrier: int) -> np.ndarray:
    """Index permutation ``perm`` with ``out[perm[k]] = in[k]``.

    Parameters
    ----------
    coded_bits_per_symbol:
        N_CBPS — coded bits carried by one OFDM symbol.
    bits_per_subcarrier:
        N_BPSC — bits per subcarrier for the active modulation.
    """
    n_cbps = coded_bits_per_symbol
    n_bpsc = bits_per_subcarrier
    if n_cbps <= 0 or n_cbps % _NUM_COLUMNS != 0:
        raise ValueError(
            f"coded_bits_per_symbol must be a positive multiple of {_NUM_COLUMNS}, got {n_cbps}"
        )
    if n_bpsc <= 0:
        raise ValueError(f"bits_per_subcarrier must be positive, got {n_bpsc}")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation: write row-wise, read column-wise.
    i = (n_cbps // _NUM_COLUMNS) * (k % _NUM_COLUMNS) + k // _NUM_COLUMNS
    # Second permutation: rotate bits within a subcarrier group.
    j = s * (i // s) + (i + n_cbps - (_NUM_COLUMNS * i) // n_cbps) % s
    return j


def interleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Interleave one OFDM symbol's worth of coded bits."""
    bits = np.asarray(bits).ravel()
    perm = interleaver_permutation(bits.size, bits_per_subcarrier)
    out = np.empty_like(bits)
    out[perm] = bits
    return out


def deinterleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Invert :func:`interleave` (works on bits or soft values)."""
    bits = np.asarray(bits).ravel()
    perm = interleaver_permutation(bits.size, bits_per_subcarrier)
    return bits[perm]
