"""Constellation mapping for the Wi-Fi-like OFDM PHY.

Gray-mapped BPSK, QPSK, 16-QAM and 64-QAM, normalised to unit average
symbol energy, following the 802.11a/g constellation definitions (the PHY
the paper's WARP endpoints transmit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "MODULATIONS",
    "get_modulation",
]


def _gray_levels(bits_per_axis: int) -> np.ndarray:
    """Gray-coded PAM levels for one I/Q axis, e.g. [-3,-1,1,3] order for 2 bits.

    Returns an array ``levels`` such that the axis value for the Gray-coded
    integer ``g`` is ``levels[g]``.
    """
    count = 1 << bits_per_axis
    # Natural binary order of amplitudes: -(count-1), ..., (count-1) step 2.
    amplitudes = np.arange(-(count - 1), count, 2, dtype=float)
    levels = np.empty(count)
    for natural, amplitude in enumerate(amplitudes):
        gray = natural ^ (natural >> 1)
        levels[gray] = amplitude
    return levels


@dataclass(frozen=True)
class Modulation:
    """A Gray-mapped square constellation.

    Attributes
    ----------
    name:
        Human-readable name (``"BPSK"``, ``"16-QAM"``, ...).
    bits_per_symbol:
        Number of bits carried per constellation point.
    """

    name: str
    bits_per_symbol: int

    def __post_init__(self) -> None:
        if self.bits_per_symbol not in (1, 2, 4, 6):
            raise ValueError(
                f"bits_per_symbol must be one of 1, 2, 4, 6; got {self.bits_per_symbol}"
            )

    @property
    def constellation(self) -> np.ndarray:
        """All constellation points indexed by the Gray-coded bit pattern.

        Bit pattern ``b_{k-1} ... b_0`` (MSB first) splits into an I half
        (first ``k/2`` bits) and Q half, each Gray-decoded to a PAM level.
        BPSK uses the real axis only.
        """
        if self.bits_per_symbol == 1:
            return np.array([-1.0 + 0j, 1.0 + 0j])
        half = self.bits_per_symbol // 2
        levels = _gray_levels(half)
        count = 1 << self.bits_per_symbol
        points = np.empty(count, dtype=complex)
        for pattern in range(count):
            i_bits = pattern >> half
            q_bits = pattern & ((1 << half) - 1)
            points[pattern] = complex(levels[i_bits], levels[q_bits])
        scale = np.sqrt(np.mean(np.abs(points) ** 2))
        return points / scale

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array (values 0/1) to complex symbols.

        The bit count must be a multiple of ``bits_per_symbol``.
        """
        bits = np.asarray(bits, dtype=int)
        if bits.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("bits must contain only 0 and 1")
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = groups @ weights
        return self.constellation[indices]

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap symbols to bits (minimum-distance decision)."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        points = self.constellation
        distances = np.abs(symbols[:, None] - points[None, :]) ** 2
        indices = np.argmin(distances, axis=1)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        bits = (indices[:, None] >> shifts[None, :]) & 1
        return bits.ravel()

    def demodulate_soft(self, symbols: np.ndarray, noise_var: float) -> np.ndarray:
        """Per-bit log-likelihood ratios, LLR > 0 meaning bit 0 more likely.

        Uses the exact max-log approximation over the constellation; noise
        variance is the total complex noise power per symbol.
        """
        if noise_var <= 0:
            raise ValueError(f"noise_var must be positive, got {noise_var}")
        symbols = np.asarray(symbols, dtype=complex).ravel()
        points = self.constellation
        count = points.size
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        point_bits = (np.arange(count)[:, None] >> shifts[None, :]) & 1
        distances = np.abs(symbols[:, None] - points[None, :]) ** 2 / noise_var
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for bit in range(self.bits_per_symbol):
            zero_mask = point_bits[:, bit] == 0
            d_zero = distances[:, zero_mask].min(axis=1)
            d_one = distances[:, ~zero_mask].min(axis=1)
            llrs[:, bit] = d_one - d_zero
        return llrs.ravel()


BPSK = Modulation("BPSK", 1)
QPSK = Modulation("QPSK", 2)
QAM16 = Modulation("16-QAM", 4)
QAM64 = Modulation("64-QAM", 6)

MODULATIONS: dict[str, Modulation] = {
    mod.name: mod for mod in (BPSK, QPSK, QAM16, QAM64)
}


def get_modulation(name: str) -> Modulation:
    """Look up a modulation by name, raising with the known names on miss."""
    try:
        return MODULATIONS[name]
    except KeyError:
        known = ", ".join(sorted(MODULATIONS))
        raise KeyError(f"unknown modulation {name!r}; known: {known}") from None
