"""OFDM numerology and symbol-level (de)modulation.

Implements the 64-subcarrier, 20 MHz Wi-Fi-like OFDM the paper's WARP
endpoints transmit (§3.1): 48 data + 4 pilot subcarriers out of 64, a
16-sample cyclic prefix, IFFT/FFT symbol shaping.

Subcarrier indexing convention: arrays of length 64 are indexed by FFT bin
``k`` re-centred so index 0 is the most negative frequency (bin -32) and
index 63 is bin +31; the DC bin sits at index 32.  This matches
:func:`repro.em.channel.subcarrier_frequencies`, and means "subcarrier 0
through 52" on the x-axes of Figures 4-6 maps to the used (non-guard,
non-DC) bins in increasing-frequency order via :meth:`OfdmParams.used_bins`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import BANDWIDTH_HZ, NUM_SUBCARRIERS

__all__ = ["OfdmParams", "DEFAULT_OFDM"]


@dataclass(frozen=True)
class OfdmParams:
    """OFDM numerology.

    Attributes
    ----------
    fft_size:
        Number of subcarriers (64 for the paper's setup).
    cyclic_prefix:
        Cyclic prefix length in samples (16 = 800 ns at 20 MHz).
    bandwidth_hz:
        Sampling/channel bandwidth.
    data_offsets, pilot_offsets:
        Logical subcarrier offsets from DC used for data and pilots
        (802.11a layout by default).
    """

    fft_size: int = NUM_SUBCARRIERS
    cyclic_prefix: int = 16
    bandwidth_hz: float = BANDWIDTH_HZ
    data_offsets: tuple[int, ...] = field(
        default_factory=lambda: tuple(
            k
            for k in range(-26, 27)
            if k != 0 and k not in (-21, -7, 7, 21)
        )
    )
    pilot_offsets: tuple[int, ...] = (-21, -7, 7, 21)

    def __post_init__(self) -> None:
        if self.fft_size <= 0 or self.fft_size & (self.fft_size - 1):
            raise ValueError(f"fft_size must be a positive power of two, got {self.fft_size}")
        if not 0 <= self.cyclic_prefix < self.fft_size:
            raise ValueError(
                f"cyclic_prefix must be in [0, fft_size), got {self.cyclic_prefix}"
            )
        overlap = set(self.data_offsets) & set(self.pilot_offsets)
        if overlap:
            raise ValueError(f"data and pilot subcarriers overlap: {sorted(overlap)}")
        half = self.fft_size // 2
        for offset in tuple(self.data_offsets) + tuple(self.pilot_offsets):
            if not -half <= offset < half:
                raise ValueError(f"subcarrier offset {offset} outside FFT range")

    # ------------------------------------------------------------------
    # Index bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_data_subcarriers(self) -> int:
        return len(self.data_offsets)

    @property
    def num_pilot_subcarriers(self) -> int:
        return len(self.pilot_offsets)

    @property
    def symbol_samples(self) -> int:
        """Time-domain samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cyclic_prefix

    @property
    def symbol_duration_s(self) -> float:
        """OFDM symbol duration (4 us for the default numerology)."""
        return self.symbol_samples / self.bandwidth_hz

    @property
    def subcarrier_spacing_hz(self) -> float:
        return self.bandwidth_hz / self.fft_size

    def _offset_to_index(self, offsets: np.ndarray) -> np.ndarray:
        """Map logical offsets (from DC) to centred-grid indices 0..fft-1."""
        return np.asarray(offsets, dtype=int) + self.fft_size // 2

    def data_bins(self) -> np.ndarray:
        """Centred-grid indices of data subcarriers, ascending in frequency."""
        return self._offset_to_index(np.sort(np.asarray(self.data_offsets)))

    def pilot_bins(self) -> np.ndarray:
        """Centred-grid indices of pilot subcarriers."""
        return self._offset_to_index(np.sort(np.asarray(self.pilot_offsets)))

    def used_bins(self) -> np.ndarray:
        """Centred-grid indices of all used (data + pilot) subcarriers."""
        offsets = np.sort(np.asarray(self.data_offsets + self.pilot_offsets))
        return self._offset_to_index(offsets)

    def used_mask(self) -> np.ndarray:
        """Boolean mask over the centred grid marking used subcarriers."""
        mask = np.zeros(self.fft_size, dtype=bool)
        mask[self.used_bins()] = True
        return mask

    # ------------------------------------------------------------------
    # Symbol shaping
    # ------------------------------------------------------------------
    def to_time_domain(self, spectrum: np.ndarray) -> np.ndarray:
        """One OFDM symbol: centred-grid spectrum -> CP-prefixed samples.

        ``spectrum`` has length ``fft_size`` on the centred grid (index 0 is
        the most negative frequency).
        """
        spectrum = np.asarray(spectrum, dtype=complex)
        if spectrum.shape != (self.fft_size,):
            raise ValueError(
                f"spectrum must have shape ({self.fft_size},), got {spectrum.shape}"
            )
        time = np.fft.ifft(np.fft.ifftshift(spectrum)) * np.sqrt(self.fft_size)
        return np.concatenate([time[-self.cyclic_prefix :] if self.cyclic_prefix else time[:0], time])

    def to_frequency_domain(self, samples: np.ndarray) -> np.ndarray:
        """One OFDM symbol: CP-prefixed samples -> centred-grid spectrum."""
        samples = np.asarray(samples, dtype=complex)
        if samples.shape != (self.symbol_samples,):
            raise ValueError(
                f"samples must have shape ({self.symbol_samples},), got {samples.shape}"
            )
        body = samples[self.cyclic_prefix :]
        return np.fft.fftshift(np.fft.fft(body)) / np.sqrt(self.fft_size)

    def place(self, data_symbols: np.ndarray, pilot_value: complex = 1.0 + 0.0j) -> np.ndarray:
        """Build a centred-grid spectrum from data symbols plus fixed pilots."""
        data_symbols = np.asarray(data_symbols, dtype=complex)
        if data_symbols.shape != (self.num_data_subcarriers,):
            raise ValueError(
                f"expected {self.num_data_subcarriers} data symbols, got {data_symbols.shape}"
            )
        spectrum = np.zeros(self.fft_size, dtype=complex)
        spectrum[self.data_bins()] = data_symbols
        spectrum[self.pilot_bins()] = pilot_value
        return spectrum

    def extract_data(self, spectrum: np.ndarray) -> np.ndarray:
        """Pull the data subcarriers out of a centred-grid spectrum."""
        spectrum = np.asarray(spectrum, dtype=complex)
        if spectrum.shape != (self.fft_size,):
            raise ValueError(
                f"spectrum must have shape ({self.fft_size},), got {spectrum.shape}"
            )
        return spectrum[self.data_bins()]


DEFAULT_OFDM = OfdmParams()
