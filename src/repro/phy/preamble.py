"""Training sequences: the long training field (LTF) used for channel estimation.

§3.2: "the transmitter sends one frame comprised of multiple OFDM symbols
and the receiver estimates the channel state information from the training
sequences in the frame."  We implement the 802.11a long training symbol
(known BPSK values on the 52 used subcarriers, sent twice with a double-
length cyclic prefix) plus a short training field for power normalisation.
"""

from __future__ import annotations

import numpy as np

from .ofdm import OfdmParams

__all__ = ["ltf_spectrum", "ltf_time_domain", "stf_time_domain", "NUM_LTF_REPEATS"]

#: The LTF is transmitted twice (802.11a), enabling noise-variance estimation.
NUM_LTF_REPEATS = 2

#: 802.11a L-LTF values on subcarriers -26..-1, 1..26 (53 entries incl. DC=0).
_LTF_VALUES = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
    dtype=float,
)

#: 802.11a L-STF occupied subcarriers (every 4th) and values (scaled QPSK).
_STF_OFFSETS = np.array([-24, -20, -16, -12, -8, -4, 4, 8, 12, 16, 20, 24])
_STF_VALUES = np.sqrt(13.0 / 6.0) * np.array(
    [1 + 1j, -1 - 1j, 1 + 1j, -1 - 1j, -1 - 1j, 1 + 1j, -1 - 1j, -1 - 1j, 1 + 1j, 1 + 1j, 1 + 1j, 1 + 1j]
)


def ltf_spectrum(params: OfdmParams) -> np.ndarray:
    """Known LTF values on the centred subcarrier grid.

    For the default 64-point numerology this is the exact 802.11a L-LTF.
    Other FFT sizes get a deterministic ±1 sequence on the used bins so the
    PHY stays usable at non-standard numerologies.
    """
    spectrum = np.zeros(params.fft_size, dtype=complex)
    half = params.fft_size // 2
    if params.fft_size == 64:
        offsets = np.arange(-26, 27)
        spectrum[offsets + half] = _LTF_VALUES
        # Restrict to the bins this numerology actually uses.
        mask = np.zeros(params.fft_size, dtype=bool)
        mask[params.used_bins()] = True
        spectrum[~mask] = 0.0
        return spectrum
    # Deterministic fallback: alternate signs over used bins.
    used = params.used_bins()
    signs = np.where(np.arange(used.size) % 2 == 0, 1.0, -1.0)
    spectrum[used] = signs
    return spectrum


def ltf_time_domain(params: OfdmParams, repeats: int = NUM_LTF_REPEATS) -> np.ndarray:
    """Time-domain LTF: ``repeats`` known symbols, each with a cyclic prefix.

    802.11a sends the two LTF repetitions behind one double-length CP; we
    prefix each repetition with the standard CP instead, which is equivalent
    for channel estimation and keeps the frame a whole number of uniform
    OFDM symbols.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    symbol = params.to_time_domain(ltf_spectrum(params))
    return np.tile(symbol, repeats)


def stf_time_domain(params: OfdmParams) -> np.ndarray:
    """One short-training-field symbol (used for AGC/power levelling)."""
    spectrum = np.zeros(params.fft_size, dtype=complex)
    half = params.fft_size // 2
    if params.fft_size == 64:
        spectrum[_STF_OFFSETS + half] = _STF_VALUES
    else:
        used = params.used_bins()[::4]
        spectrum[used] = 1.0 + 1.0j
    return params.to_time_domain(spectrum)
