"""MCS table, error-rate models and rate adaptation.

Connects channel quality to throughput: the paper's premise is that a
"flatter" channel lets OFDM "offer a greater bit rate, and hence
throughput, to higher layers" (§1).  The 802.11a/g MCS ladder (6-54 Mbps),
AWGN BER approximations per constellation, a coded-PER model, and an
effective-SNR-based rate selector quantify that premise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .coding import ConvolutionalCode, get_code
from .modulation import BPSK, QAM16, QAM64, QPSK, Modulation
from .ofdm import DEFAULT_OFDM, OfdmParams
from .snr import effective_snr_db

__all__ = [
    "Mcs",
    "MCS_TABLE",
    "ber_awgn",
    "coded_per",
    "select_mcs",
    "expected_throughput_mbps",
]


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme of the 802.11a/g ladder."""

    index: int
    modulation: Modulation
    code_rate: str
    data_rate_mbps: float

    @property
    def code(self) -> ConvolutionalCode:
        return get_code(self.code_rate)

    def bits_per_ofdm_symbol(self, params: OfdmParams = DEFAULT_OFDM) -> float:
        """Information bits per OFDM symbol at this MCS."""
        coded = params.num_data_subcarriers * self.modulation.bits_per_symbol
        return coded * self.code.rate


MCS_TABLE: tuple[Mcs, ...] = (
    Mcs(0, BPSK, "1/2", 6.0),
    Mcs(1, BPSK, "3/4", 9.0),
    Mcs(2, QPSK, "1/2", 12.0),
    Mcs(3, QPSK, "3/4", 18.0),
    Mcs(4, QAM16, "1/2", 24.0),
    Mcs(5, QAM16, "3/4", 36.0),
    Mcs(6, QAM64, "2/3", 48.0),
    Mcs(7, QAM64, "3/4", 54.0),
)


def _q_function(x: np.ndarray | float) -> np.ndarray | float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * np.asarray(np.vectorize(math.erfc)(np.asarray(x) / math.sqrt(2.0)))


def ber_awgn(modulation: Modulation, snr_db: float | np.ndarray) -> np.ndarray | float:
    """Uncoded bit error rate on AWGN at per-symbol SNR ``snr_db``.

    Standard Gray-mapping approximations: BPSK/QPSK exact, square QAM via
    the nearest-neighbour union bound.
    """
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    bits = modulation.bits_per_symbol
    if bits == 1:
        return _q_function(np.sqrt(2.0 * snr))
    if bits == 2:
        return _q_function(np.sqrt(snr))
    m = 2**bits
    k = math.sqrt(m)
    coeff = 4.0 / bits * (1.0 - 1.0 / k)
    arg = np.sqrt(3.0 * snr / (m - 1.0))
    return np.minimum(coeff * _q_function(arg), 0.5)


def coded_per(
    mcs: Mcs,
    snr_db: float,
    frame_bits: int = 8000,
) -> float:
    """Approximate frame error rate after convolutional coding.

    Uses the standard union-bound-style abstraction: the convolutional code
    provides an effective SNR gain (larger for lower rates), and the frame
    fails if any of its bits does at the coded BER.  Calibrated so the MCS
    switching points land at the usual ~3 dB spacing of the 802.11a ladder.
    """
    if frame_bits <= 0:
        raise ValueError(f"frame_bits must be positive, got {frame_bits}")
    coding_gain_db = {"1/2": 5.0, "2/3": 4.0, "3/4": 3.5}[mcs.code_rate]
    ber = float(np.asarray(ber_awgn(mcs.modulation, snr_db + coding_gain_db)))
    # Residual post-Viterbi BER falls steeply; square the raw BER to model
    # the error-correction knee while keeping a closed form.
    post_ber = min(ber**2 * 1e2, ber, 0.5)
    per = 1.0 - (1.0 - post_ber) ** frame_bits
    return float(min(max(per, 0.0), 1.0))


def select_mcs(
    per_subcarrier_snr_db: np.ndarray,
    per_target: float = 0.1,
    frame_bits: int = 8000,
    table: Sequence[Mcs] = MCS_TABLE,
) -> Mcs:
    """Pick the fastest MCS whose predicted PER meets the target.

    The frequency-selective channel is collapsed to its capacity-equivalent
    effective SNR first, so a deep null (low min-SNR) properly drags the
    selected rate down — the mechanism PRESS link enhancement exploits.
    Falls back to the most robust MCS when none meets the target.
    """
    if not 0.0 < per_target < 1.0:
        raise ValueError(f"per_target must be in (0, 1), got {per_target}")
    eff_snr = effective_snr_db(per_subcarrier_snr_db)
    best = table[0]
    for mcs in sorted(table, key=lambda m: m.data_rate_mbps):
        if coded_per(mcs, eff_snr, frame_bits) <= per_target:
            best = mcs
    return best


def expected_throughput_mbps(
    per_subcarrier_snr_db: np.ndarray,
    frame_bits: int = 8000,
    table: Sequence[Mcs] = MCS_TABLE,
) -> float:
    """Goodput of the best MCS: rate x (1 - PER), maximised over the ladder."""
    eff_snr = effective_snr_db(per_subcarrier_snr_db)
    best = 0.0
    for mcs in table:
        per = coded_per(mcs, eff_snr, frame_bits)
        best = max(best, mcs.data_rate_mbps * (1.0 - per))
    return best
