"""SNR and EVM estimation utilities.

The per-subcarrier SNR plotted throughout the paper's Figures 4, 6 and 7 is
what these helpers produce: from repeated training symbols (method of the
receive chain) or from decision errors on data symbols (EVM).
"""

from __future__ import annotations

import numpy as np

__all__ = ["evm", "evm_to_snr_db", "snr_from_ltf_pair", "effective_snr_db"]


def evm(received: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error-vector magnitude (linear, not percent).

    EVM = sqrt(mean |r - s|^2 / mean |s|^2).
    """
    received = np.asarray(received, dtype=complex)
    reference = np.asarray(reference, dtype=complex)
    if received.shape != reference.shape:
        raise ValueError(f"shape mismatch: {received.shape} vs {reference.shape}")
    ref_power = float(np.mean(np.abs(reference) ** 2))
    if ref_power == 0:
        raise ValueError("reference power is zero")
    error_power = float(np.mean(np.abs(received - reference) ** 2))
    return float(np.sqrt(error_power / ref_power))


def evm_to_snr_db(evm_value: float) -> float:
    """SNR implied by an EVM measurement: SNR = 1 / EVM^2."""
    if evm_value <= 0:
        raise ValueError(f"evm must be positive, got {evm_value}")
    return float(-20.0 * np.log10(evm_value))


def snr_from_ltf_pair(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Per-subcarrier SNR (dB) from two received repetitions of a known symbol.

    Signal power is estimated from the average of the two repetitions and
    noise power from their difference — the classic two-LTF estimator; no
    knowledge of the transmitted values is needed because they cancel in
    the ratio.
    """
    first = np.asarray(first, dtype=complex)
    second = np.asarray(second, dtype=complex)
    if first.shape != second.shape:
        raise ValueError(f"shape mismatch: {first.shape} vs {second.shape}")
    mean = (first + second) / 2.0
    # Var(noise per repeat) = |diff|^2 / 2; mean has half that variance, so
    # subtract the residual noise in the signal-power estimate.
    noise_power = np.abs(first - second) ** 2 / 2.0
    signal_power = np.maximum(np.abs(mean) ** 2 - noise_power / 2.0, 1e-30)
    return 10.0 * np.log10(signal_power / np.maximum(noise_power, 1e-30))


def effective_snr_db(per_subcarrier_snr_db: np.ndarray) -> float:
    """Capacity-equivalent flat SNR of a frequency-selective channel.

    Maps each subcarrier to its Shannon capacity, averages, and inverts —
    the "effective SNR" abstraction used for rate selection over selective
    channels.  A channel with a deep null has a much lower effective SNR
    than its mean SNR, which is exactly why moving nulls (Figure 4) raises
    achievable rate.
    """
    snr_db = np.asarray(per_subcarrier_snr_db, dtype=float)
    if snr_db.size == 0:
        raise ValueError("need at least one subcarrier SNR")
    capacities = np.log2(1.0 + 10.0 ** (snr_db / 10.0))
    mean_capacity = float(np.mean(capacities))
    return float(10.0 * np.log10(2.0**mean_capacity - 1.0 + 1e-30))
