"""Packet detection, timing and carrier synchronisation.

The receive chain in :mod:`repro.phy.frame` assumes frame-aligned samples —
valid for the paper's externally time-synchronised testbed (§3.1), but a
deployed PRESS receiver must find frames itself.  This module implements
the classical 802.11 synchronisation front end:

* Schmidl-Cox style detection on the repeating STF/LTF structure
  (autocorrelation plateau), giving packet presence and coarse timing;
* fine timing by cross-correlating against the known LTF waveform;
* carrier-frequency-offset estimation from the phase of the repetition
  autocorrelation (coarse from the short periodicity, fine from the LTF
  repetition), and its correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ofdm import DEFAULT_OFDM, OfdmParams
from .preamble import ltf_time_domain

__all__ = [
    "SyncResult",
    "detect_packet",
    "fine_timing",
    "estimate_cfo",
    "correct_cfo",
    "synchronize",
]


def _autocorrelation_metric(samples: np.ndarray, lag: int, window: int) -> np.ndarray:
    """Normalised sliding autocorrelation |P(d)|^2 / R(d)^2 (Schmidl-Cox)."""
    samples = np.asarray(samples, dtype=complex)
    n = samples.size - lag - window
    if n <= 0:
        return np.zeros(0)
    conj_products = samples[lag:] * np.conj(samples[:-lag])
    energies = np.abs(samples[lag:]) ** 2
    # Sliding sums via cumulative sums.
    cp = np.concatenate([[0.0 + 0.0j], np.cumsum(conj_products)])
    ce = np.concatenate([[0.0], np.cumsum(energies)])
    p = cp[window:n + window] - cp[:n]
    r = ce[window:n + window] - ce[:n]
    r = np.maximum(r, 1e-30)
    return np.abs(p) ** 2 / r**2


def detect_packet(
    samples: np.ndarray,
    params: OfdmParams = DEFAULT_OFDM,
    threshold: float = 0.5,
) -> Optional[int]:
    """Coarse packet detection: index where the STF plateau starts, or None.

    Uses the 16-sample periodicity of the short training field.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    lag = params.fft_size // 4  # STF period (16 at the default numerology)
    metric = _autocorrelation_metric(samples, lag, window=2 * lag)
    above = np.nonzero(metric > threshold)[0]
    if above.size == 0:
        return None
    return int(above[0])


def fine_timing(
    samples: np.ndarray,
    coarse_index: int,
    params: OfdmParams = DEFAULT_OFDM,
    search_span: int = 160,
) -> int:
    """Frame start by cross-correlation against the known LTF waveform.

    Returns the sample index of the *frame* start (the STF symbol's first
    sample), assuming the standard STF | LTF x2 | ... layout.
    """
    if search_span <= 0:
        raise ValueError(f"search_span must be positive, got {search_span}")
    samples = np.asarray(samples, dtype=complex)
    reference = ltf_time_domain(params, repeats=1)
    start = max(coarse_index - search_span // 2, 0)
    stop = min(coarse_index + search_span, samples.size - reference.size)
    if stop <= start:
        return max(coarse_index, 0)
    best_index = start
    best_metric = -1.0
    ref_energy = float(np.sum(np.abs(reference) ** 2))
    for index in range(start, stop):
        window = samples[index : index + reference.size]
        corr = abs(np.vdot(reference, window))
        energy = float(np.sum(np.abs(window) ** 2))
        metric = corr**2 / max(energy * ref_energy, 1e-30)
        if metric > best_metric:
            best_metric = metric
            best_index = index
    # The LTF correlation peak sits one STF symbol after the frame start.
    return best_index - params.symbol_samples


def estimate_cfo(
    samples: np.ndarray,
    frame_start: int,
    params: OfdmParams = DEFAULT_OFDM,
) -> float:
    """CFO estimate [Hz] from the phase of the LTF repetition correlation.

    The two LTF symbols are identical up to the CFO-induced rotation
    ``2 pi f_off T_sym``; measuring that phase gives f_off unambiguously up
    to +/- 1/(2 T_sym) (±6.25 kHz at the default numerology) — ample for
    the residual offsets of §3-class hardware.
    """
    samples = np.asarray(samples, dtype=complex)
    sym = params.symbol_samples
    first_start = frame_start + sym  # skip the STF
    second_start = first_start + sym
    first = samples[first_start : first_start + sym]
    second = samples[second_start : second_start + sym]
    if first.size < sym or second.size < sym:
        raise ValueError("samples too short for CFO estimation at this offset")
    correlation = np.vdot(first, second)
    phase = float(np.angle(correlation))
    duration = sym / params.bandwidth_hz
    return phase / (2.0 * np.pi * duration)


def correct_cfo(
    samples: np.ndarray,
    cfo_hz: float,
    params: OfdmParams = DEFAULT_OFDM,
) -> np.ndarray:
    """Remove a carrier frequency offset."""
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(samples.size)
    return samples * np.exp(-2.0j * np.pi * cfo_hz * n / params.bandwidth_hz)


@dataclass(frozen=True)
class SyncResult:
    """Output of the synchronisation front end.

    Attributes
    ----------
    frame_start:
        Sample index of the frame's first sample.
    cfo_hz:
        Estimated carrier frequency offset.
    samples:
        CFO-corrected samples, trimmed to start at ``frame_start``.
    """

    frame_start: int
    cfo_hz: float
    samples: np.ndarray


def synchronize(
    samples: np.ndarray,
    params: OfdmParams = DEFAULT_OFDM,
    threshold: float = 0.5,
) -> Optional[SyncResult]:
    """Full front end: detect, time-align and CFO-correct one frame.

    Returns None when no packet is detected.
    """
    coarse = detect_packet(samples, params, threshold)
    if coarse is None:
        return None
    start = fine_timing(samples, coarse, params)
    start = max(start, 0)
    cfo = estimate_cfo(samples, start, params)
    corrected = correct_cfo(samples, cfo, params)
    return SyncResult(frame_start=start, cfo_hz=cfo, samples=corrected[start:])
