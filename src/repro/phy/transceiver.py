"""End-to-end link simulation: TX samples -> multipath channel -> RX chain.

Ties the PHY to the EM substrate: a frame built by
:func:`repro.phy.frame.build_frame` is convolved with the channel impulse
response derived from the scene's multipath components, receiver noise is
added, and the receive chain recovers the bits and — crucially for PRESS —
the CSI estimate the controller acts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import dbm_to_watts, thermal_noise_power_w
from ..em.channel import Channel
from ..em.noise import awgn
from ..em.paths import paths_to_cir
from .frame import FrameFormat, RxResult, TxFrame, build_frame, receive_frame

__all__ = ["LinkBudget", "simulate_link", "transmit_over_channel"]


@dataclass(frozen=True)
class LinkBudget:
    """Transmit power and receiver noise parameters for a link."""

    tx_power_dbm: float = 15.0
    noise_figure_db: float = 7.0

    def noise_power_w(self, bandwidth_hz: float) -> float:
        """Receiver noise power over the full signal bandwidth."""
        return thermal_noise_power_w(bandwidth_hz, self.noise_figure_db)


def transmit_over_channel(
    samples: np.ndarray,
    channel: Channel,
    budget: LinkBudget,
    rng: Optional[np.random.Generator] = None,
    max_cir_taps: int = 64,
) -> np.ndarray:
    """Pass baseband samples through the multipath channel, adding AWGN.

    The transmit samples are scaled so their mean power equals the transmit
    power; the channel is applied as a tapped-delay-line convolution of the
    scene's multipath components (so delay spread produces real ISI, which
    the cyclic prefix must absorb); receiver noise is thermal noise over the
    signal bandwidth through the noise figure.

    Parameters
    ----------
    samples:
        Unit-scale baseband transmit samples.
    channel:
        The multipath channel (paths + numerology).
    budget:
        TX power / noise figure.
    rng:
        Noise generator; ``None`` disables noise (useful in tests).
    max_cir_taps:
        Tap budget for the discretised impulse response.
    """
    samples = np.asarray(samples, dtype=complex)
    mean_power = float(np.mean(np.abs(samples) ** 2))
    if mean_power <= 0:
        raise ValueError("transmit samples have zero power")
    scale = np.sqrt(dbm_to_watts(budget.tx_power_dbm) / mean_power)
    cir = paths_to_cir(list(channel.paths), channel.bandwidth_hz, max_cir_taps)
    received = np.convolve(samples * scale, cir)[: samples.size]
    if rng is not None:
        received = received + awgn(
            received.shape, budget.noise_power_w(channel.bandwidth_hz), rng
        )
    return received


def _default_payload_rng() -> np.random.Generator:
    """The documented fixed payload stream used when none is threaded.

    Module-level by design: all callers that omit ``payload_rng`` share
    one well-known bit sequence, and the seed lives in exactly one place.
    """
    return np.random.default_rng(0)


def simulate_link(
    channel: Channel,
    fmt: FrameFormat,
    num_info_bits: int = 1024,
    budget: LinkBudget = LinkBudget(),
    rng: Optional[np.random.Generator] = None,
    payload_rng: Optional[np.random.Generator] = None,
) -> RxResult:
    """Send one random frame over ``channel`` and decode it.

    Returns the receive result, whose ``channel`` attribute is the CSI the
    PRESS controller would observe and whose ``bit_errors`` verifies link
    quality end to end.
    """
    bit_rng = payload_rng if payload_rng is not None else _default_payload_rng()
    info_bits = bit_rng.integers(0, 2, num_info_bits)
    tx: TxFrame = build_frame(info_bits, fmt)
    received = transmit_over_channel(tx.samples, channel, budget, rng=rng)
    return receive_frame(
        received, fmt, num_info_bits, expected_bits=info_bits, has_stf=True
    )
