"""Simulated SDR substrate: devices, front-end impairments, time sync, testbed."""

from .device import RadioChain, SdrDevice, usrp_n210, usrp_x310, warp_v3
from .frontend import (
    FrontendImpairments,
    apply_cfo,
    apply_iq_imbalance,
    apply_phase_noise,
)
from .testbed import SweepResult, Testbed
from .timesync import Clock, SweepTiming, max_unsynced_interval_s, sync_clocks

__all__ = [
    "RadioChain",
    "SdrDevice",
    "warp_v3",
    "usrp_n210",
    "usrp_x310",
    "FrontendImpairments",
    "apply_cfo",
    "apply_phase_noise",
    "apply_iq_imbalance",
    "Testbed",
    "SweepResult",
    "Clock",
    "sync_clocks",
    "max_unsynced_interval_s",
    "SweepTiming",
]
