"""Simulated software-defined radio devices.

Stand-ins for the paper's testbed hardware (§3.1, §3.2.2, §3.2.3):

* WARP v3 boards transmitting the Wi-Fi-like OFDM frames;
* USRP N210 radios (single daughterboard) for the harmonization study;
* USRP X310 with two UBX-160 daughterboards for the 2x2 MIMO study.

The devices carry positions, antennas, TX power and noise figure; the
testbed harness (:mod:`repro.sdr.testbed`) wires them through the EM
substrate.  RF impairments live in :mod:`repro.sdr.frontend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..em.antennas import Antenna, OmniAntenna
from ..em.geometry import Point

__all__ = ["RadioChain", "SdrDevice", "warp_v3", "usrp_n210", "usrp_x310"]


@dataclass(frozen=True)
class RadioChain:
    """One RF chain: an antenna at a position.

    Attributes
    ----------
    position:
        Antenna location in the floor plan.
    antenna:
        Radiation pattern (2 dBi omni by default, like the PulseLarsen
        W1030 endpoints in §3.1).
    """

    position: Point
    antenna: Antenna = field(default_factory=OmniAntenna)


@dataclass(frozen=True)
class SdrDevice:
    """A software-defined radio with one or more chains.

    Attributes
    ----------
    name:
        Device identifier.
    chains:
        RF chains (antennas); 2 for the X310 MIMO configuration.
    tx_power_dbm:
        Per-chain transmit power.
    noise_figure_db:
        Receive noise figure.
    model:
        Hardware model tag ("WARP v3", "USRP N210", "USRP X310").
    """

    name: str
    chains: tuple[RadioChain, ...]
    tx_power_dbm: float = 15.0
    noise_figure_db: float = 7.0
    model: str = "generic"

    def __post_init__(self) -> None:
        if len(self.chains) == 0:
            raise ValueError("a device needs at least one radio chain")

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    @property
    def position(self) -> Point:
        """Primary (first-chain) antenna position."""
        return self.chains[0].position

    def moved_to(self, position: Point) -> "SdrDevice":
        """A copy translated so the primary chain sits at ``position``.

        Preserves the relative geometry of multi-chain arrays.
        """
        offset = position - self.position
        moved = tuple(
            replace(chain, position=chain.position + offset) for chain in self.chains
        )
        return replace(self, chains=moved)


def warp_v3(
    name: str,
    position: Point,
    antenna: Antenna = OmniAntenna(),
    tx_power_dbm: float = 15.0,
) -> SdrDevice:
    """A WARP v3 board (§3.1 default endpoint): single chain, ~7 dB NF."""
    return SdrDevice(
        name=name,
        chains=(RadioChain(position=position, antenna=antenna),),
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=7.0,
        model="WARP v3",
    )


def usrp_n210(
    name: str,
    position: Point,
    antenna: Antenna = OmniAntenna(),
    tx_power_dbm: float = 12.0,
) -> SdrDevice:
    """A USRP N210 (§3.2.2 harmonization endpoints): single chain, ~8 dB NF."""
    return SdrDevice(
        name=name,
        chains=(RadioChain(position=position, antenna=antenna),),
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=8.0,
        model="USRP N210",
    )


def usrp_x310(
    name: str,
    position: Point,
    antenna_spacing_m: float = 0.0609,
    antenna: Antenna = OmniAntenna(),
    tx_power_dbm: float = 12.0,
) -> SdrDevice:
    """A USRP X310 with two UBX-160 daughterboards (§3.2.3 MIMO endpoint).

    The two chains sit ``antenna_spacing_m`` apart along the x axis
    (default lambda/2 at 2.462 GHz).
    """
    if antenna_spacing_m <= 0:
        raise ValueError(f"antenna_spacing_m must be positive, got {antenna_spacing_m}")
    chains = (
        RadioChain(position=position, antenna=antenna),
        RadioChain(
            position=Point(position.x + antenna_spacing_m, position.y),
            antenna=antenna,
        ),
    )
    return SdrDevice(
        name=name,
        chains=chains,
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=6.0,
        model="USRP X310",
    )
