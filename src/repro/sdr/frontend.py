"""RF front-end impairments.

Real SDR front ends are not ideal: oscillators differ (carrier frequency
offset), jitter (phase noise), and the I/Q paths are slightly mismatched.
These effects ride on every measurement the paper reports; modelling them
lets the test suite check that the PRESS statistics survive realistic
hardware dirt, and lets ablations quantify how much estimation error the
controller can tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrontendImpairments", "apply_cfo", "apply_phase_noise", "apply_iq_imbalance"]


def apply_cfo(samples: np.ndarray, cfo_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Rotate samples by a carrier frequency offset."""
    if sample_rate_hz <= 0:
        raise ValueError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(samples.size)
    return samples * np.exp(2.0j * np.pi * cfo_hz * n / sample_rate_hz)


def apply_phase_noise(
    samples: np.ndarray,
    linewidth_hz: float,
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply Wiener (random-walk) phase noise of the given 3-dB linewidth."""
    if sample_rate_hz <= 0:
        raise ValueError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    if linewidth_hz < 0:
        raise ValueError(f"linewidth_hz must be non-negative, got {linewidth_hz}")
    samples = np.asarray(samples, dtype=complex)
    if linewidth_hz == 0:
        return samples.copy()
    increment_var = 2.0 * np.pi * linewidth_hz / sample_rate_hz
    increments = rng.normal(scale=np.sqrt(increment_var), size=samples.size)
    phase = np.cumsum(increments)
    return samples * np.exp(1j * phase)


def apply_iq_imbalance(
    samples: np.ndarray,
    gain_mismatch_db: float = 0.0,
    phase_mismatch_rad: float = 0.0,
) -> np.ndarray:
    """Apply transmitter I/Q gain and phase mismatch.

    Standard model: y = mu * x + nu * conj(x) with
    mu = (1 + g e^{j phi}) / 2, nu = (1 - g e^{j phi}) / 2.
    """
    samples = np.asarray(samples, dtype=complex)
    g = 10.0 ** (gain_mismatch_db / 20.0)
    rot = g * np.exp(1j * phase_mismatch_rad)
    mu = (1.0 + rot) / 2.0
    nu = (1.0 - rot) / 2.0
    return mu * samples + nu * np.conj(samples)


@dataclass(frozen=True)
class FrontendImpairments:
    """A bundle of front-end impairments applied in a realistic order.

    Attributes
    ----------
    cfo_hz:
        Residual carrier frequency offset (after coarse correction).
    phase_noise_linewidth_hz:
        Oscillator linewidth for Wiener phase noise (0 disables).
    iq_gain_mismatch_db, iq_phase_mismatch_rad:
        I/Q imbalance parameters.
    """

    cfo_hz: float = 0.0
    phase_noise_linewidth_hz: float = 0.0
    iq_gain_mismatch_db: float = 0.0
    iq_phase_mismatch_rad: float = 0.0

    def apply(
        self,
        samples: np.ndarray,
        sample_rate_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply IQ imbalance, then CFO, then phase noise."""
        out = apply_iq_imbalance(
            samples, self.iq_gain_mismatch_db, self.iq_phase_mismatch_rad
        )
        if self.cfo_hz:
            out = apply_cfo(out, self.cfo_hz, sample_rate_hz)
        if self.phase_noise_linewidth_hz:
            out = apply_phase_noise(
                out, self.phase_noise_linewidth_hz, sample_rate_hz, rng
            )
        return out
