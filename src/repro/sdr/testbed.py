"""The simulated testbed: devices + scene + PRESS array, wired together.

Replaces the paper's physical lab: WARP/USRP devices stand at their
positions in a scene, a PRESS array sits between them, and this harness
produces the measurements the paper collects — per-subcarrier SNR sweeps
over all array configurations (Figures 4-6), frequency-selectivity pairs
(Figure 7), and per-configuration 2x2 MIMO channel matrices (Figure 8).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..constants import BANDWIDTH_HZ, CARRIER_FREQUENCY_HZ, NUM_SUBCARRIERS
from ..core.array import PressArray
from ..core.basis import (
    MAX_ENUMERABLE_CONFIGS,
    BasisEvaluator,
    ChannelBasis,
    SearchSpaceTooLarge,
    _too_large_message,
)
from ..core.configuration import ArrayConfiguration
from ..em.channel import (
    Channel,
    ChannelObservation,
    observe_cfr,
    snr_db_from_cfr,
    subcarrier_frequencies,
)
from ..em.antennas import Antenna
from ..em.geometry import Point
from ..em.paths import SignalPath, paths_to_cfr
from ..em.raytracer import RayTracer
from ..em.scene import Scene
from ..em.trace_cache import global_trace_cache
from ..obs.tracing import global_tracer
from ..phy.ofdm import OfdmParams
from .device import SdrDevice

__all__ = [
    "Testbed",
    "SweepResult",
    "drift_factors",
    "sweep_basis_snr",
    "LARGE_ARRAY_THRESHOLD",
]

# Span names: registered once here so the phase vocabulary of a run is
# statically known (enforced by `repro lint` rule RPL006).
_SPAN_BASIS_TRACE = "testbed.basis_trace"
_SPAN_BASES_FOR_POINTS = "testbed.bases_for_points"
_SPAN_SWEEP = "testbed.sweep"

#: Arrays at or above this element count trace their basis through
#: :meth:`ChannelBasis.trace_chunked` (per-element geometry, vectorized
#: state folding, budgeted tensor) instead of the scalar per-(element,
#: state) path.  Below it the scalar path is kept so prototype-scale
#: results stay bit-identical with earlier revisions.
LARGE_ARRAY_THRESHOLD = 32


def drift_factors(
    num_paths: int,
    rng: Optional[np.random.Generator],
    drift_phase_rad: float,
    drift_amplitude: float,
) -> Optional[np.ndarray]:
    """Per-path complex drift factors for one measurement (or ``None``).

    Draw order (one phase vector, then one amplitude vector) is the RNG
    contract shared by the legacy and basis sweep paths — and by workers
    sweeping a shipped basis without a testbed — so identically seeded
    generators produce identical measurements everywhere.
    """
    if rng is None or (drift_phase_rad == 0 and drift_amplitude == 0):
        return None
    phases = rng.normal(scale=drift_phase_rad, size=num_paths)
    scales = np.maximum(
        1.0 + rng.normal(scale=drift_amplitude, size=num_paths), 0.0
    )
    return scales * np.exp(1j * phases)


def sweep_basis_snr(
    basis: ChannelBasis,
    repetitions: int,
    rng: Optional[np.random.Generator],
    tx_power_dbm: float,
    noise_figure_db: float,
    drift_phase_rad: float = 0.0,
    drift_amplitude: float = 0.0,
) -> np.ndarray:
    """The basis-mode configuration sweep, standalone.

    Exactly :meth:`Testbed._sweep_basis`'s computation, but taking the
    (picklable) basis and radio parameters directly: a worker process can
    sweep a basis traced by the parent without rebuilding scene, tracer or
    testbed.  Drift/noise draws stay in legacy order (repetition-major,
    configuration-major).  Returns shape
    ``(repetitions, configurations, subcarriers)``.
    """
    element_sums = basis.all_element_sums  # (C, K)
    num_configs = element_sums.shape[0]
    if rng is None:
        cfr = basis.ambient_cfr() + element_sums
        snr_once = snr_db_from_cfr(
            cfr,
            basis.num_subcarriers,
            basis.bandwidth_hz,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
        )
        return np.broadcast_to(snr_once, (repetitions,) + snr_once.shape).copy()
    snr = np.empty((repetitions, num_configs, basis.num_subcarriers))
    for rep in range(repetitions):
        for index in range(num_configs):
            factors = drift_factors(
                basis.num_ambient_paths, rng, drift_phase_rad, drift_amplitude
            )
            ambient = basis.ambient_cfr(
                None if factors is None else basis.ambient_gains * factors
            )
            observation = observe_cfr(
                ambient + element_sums[index],
                basis.num_subcarriers,
                basis.bandwidth_hz,
                tx_power_dbm=tx_power_dbm,
                noise_figure_db=noise_figure_db,
                rng=rng,
            )
            snr[rep, index] = observation.snr_db
    return snr


@dataclass(frozen=True)
class SweepResult:
    """A full configuration sweep, §3.2-style.

    Attributes
    ----------
    snr_db:
        Array of shape (repetitions, configurations, subcarriers).
    configurations:
        The configurations, in sweep order.
    used_mask:
        Which subcarriers are used (52 of 64 for the default numerology).
    """

    snr_db: np.ndarray
    configurations: tuple[ArrayConfiguration, ...]
    used_mask: np.ndarray

    @property
    def num_repetitions(self) -> int:
        return self.snr_db.shape[0]

    @property
    def num_configurations(self) -> int:
        return self.snr_db.shape[1]

    def mean_snr_db(self) -> np.ndarray:
        """Per-configuration, per-subcarrier SNR averaged over repetitions."""
        return self.snr_db.mean(axis=0)

    def used_snr_db(self) -> np.ndarray:
        """SNR restricted to used subcarriers, shape (reps, configs, used)."""
        return self.snr_db[:, :, self.used_mask]


class Testbed:
    """A complete measurement setup.

    Parameters
    ----------
    scene:
        The propagation environment.
    array:
        The PRESS array installed in it.
    frequency_hz, bandwidth_hz, num_subcarriers:
        Radio numerology (defaults: the paper's channel 11 / 20 MHz / 64).
    max_bounces:
        Ray-tracing depth for the ambient environment.
    """

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        scene: Scene,
        array: PressArray,
        frequency_hz: float = CARRIER_FREQUENCY_HZ,
        bandwidth_hz: float = BANDWIDTH_HZ,
        num_subcarriers: int = NUM_SUBCARRIERS,
        max_bounces: int = 2,
        drift_phase_rad: float = 0.0,
        drift_amplitude: float = 0.0,
    ) -> None:
        if drift_phase_rad < 0 or drift_amplitude < 0:
            raise ValueError("drift parameters must be non-negative")
        self.scene = scene
        self.array = array
        self.frequency_hz = frequency_hz
        self.bandwidth_hz = bandwidth_hz
        self.num_subcarriers = num_subcarriers
        #: Per-measurement ambient channel drift.  The §3.2 sweep takes ~5 s
        #: — far beyond the channel coherence time — so successive
        #: configuration measurements see slightly different ambient
        #: channels.  Each measurement perturbs every ambient path's phase
        #: (sigma = ``drift_phase_rad``) and amplitude (relative sigma =
        #: ``drift_amplitude``) when an rng is supplied.
        self.drift_phase_rad = drift_phase_rad
        self.drift_amplitude = drift_amplitude
        self.tracer = RayTracer(
            scene=scene, frequency_hz=frequency_hz, max_bounces=max_bounces
        )
        self._environment_cache: dict[tuple, tuple[SignalPath, ...]] = {}
        self._basis_cache: dict[tuple, ChannelBasis] = {}
        # The configuration space is fixed by the (immutable) array; its
        # enumeration is computed lazily — a wall-sized array's space can
        # never be enumerated at all (see :attr:`configurations`), but the
        # testbed must still construct so the basis/delta paths can run.
        self._space = array.configuration_space()
        self._configurations: Optional[tuple[ArrayConfiguration, ...]] = None

    @property
    def configurations(self) -> tuple[ArrayConfiguration, ...]:
        """Every configuration, enumerated once per testbed (guarded).

        Raises :class:`~repro.core.basis.SearchSpaceTooLarge` on
        RFocus-scale arrays instead of materializing the M^N tuple.
        """
        if self._configurations is None:
            if self._space.size > MAX_ENUMERABLE_CONFIGS:
                raise SearchSpaceTooLarge(_too_large_message(self._space))
            self._configurations = tuple(self._space.all_configurations())
        return self._configurations

    def _drift_factors(
        self,
        num_paths: int,
        rng: Optional[np.random.Generator],
    ) -> Optional[np.ndarray]:
        """Per-path drift factors (see module-level :func:`drift_factors`)."""
        return drift_factors(
            num_paths, rng, self.drift_phase_rad, self.drift_amplitude
        )

    def _drifted(
        self,
        paths: tuple[SignalPath, ...],
        rng: Optional[np.random.Generator],
    ) -> tuple[SignalPath, ...]:
        """One coherence-drifted realisation of the ambient paths."""
        factors = self._drift_factors(len(paths), rng)
        if factors is None:
            return paths
        return tuple(
            path.scaled(complex(factor)) for path, factor in zip(paths, factors)
        )

    # ------------------------------------------------------------------
    # Environment paths (configuration independent, cached)
    # ------------------------------------------------------------------
    def environment_paths(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        tx_chain: int = 0,
        rx_chain: int = 0,
    ) -> tuple[SignalPath, ...]:
        """Ambient multipath between two device chains (no PRESS paths)."""
        tx = tx_device.chains[tx_chain]
        rx = rx_device.chains[rx_chain]
        key = (
            tx.position.as_tuple(),
            rx.position.as_tuple(),
            tx.antenna,
            rx.antenna,
        )
        if key not in self._environment_cache:
            # The process-wide cache is keyed by geometry *values* (scene
            # fingerprint + endpoints), so testbeds rebuilt for the same
            # placement seed — e.g. successive experiments in a figure
            # suite — share one trace across instances.
            self._environment_cache[key] = global_trace_cache().get_or_trace(
                self.tracer, tx.position, rx.position, tx.antenna, rx.antenna
            )
        return self._environment_cache[key]

    def basis_for(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        tx_chain: int = 0,
        rx_chain: int = 0,
    ) -> ChannelBasis:
        """The precomputed channel basis for a device-chain pair (cached).

        Traces geometry once — ambient multipath plus one two-hop relay
        path per (element, state) — after which any configuration's CFR is
        ``H0 + sum_n E[n, c_n]``, a vectorized gather over the basis.

        Arrays of :data:`LARGE_ARRAY_THRESHOLD` elements or more route
        through :meth:`ChannelBasis.trace_chunked` (per-element geometry,
        per-chunk vectorized state folding, budgeted tensor allocation);
        smaller arrays keep the scalar path bit-for-bit.
        """
        tx = tx_device.chains[tx_chain]
        rx = rx_device.chains[rx_chain]
        key = (
            tx.position.as_tuple(),
            rx.position.as_tuple(),
            tx.antenna,
            rx.antenna,
        )
        if key not in self._basis_cache:
            trace = (
                ChannelBasis.trace_chunked
                if self.array.num_elements >= LARGE_ARRAY_THRESHOLD
                else ChannelBasis.trace
            )
            with global_tracer().span(_SPAN_BASIS_TRACE):
                self._basis_cache[key] = trace(
                    self.array,
                    tx.position,
                    rx.position,
                    self.tracer,
                    tx_antenna=tx.antenna,
                    rx_antenna=rx.antenna,
                    num_subcarriers=self.num_subcarriers,
                    bandwidth_hz=self.bandwidth_hz,
                    environment_paths=self.environment_paths(
                        tx_device, rx_device, tx_chain, rx_chain
                    ),
                )
        return self._basis_cache[key]

    def bases_for_points(
        self,
        tx_device: SdrDevice,
        rx_points: Union[Sequence[Point], np.ndarray],
        rx_antenna: Antenna,
        tx_chain: int = 0,
    ) -> list[ChannelBasis]:
        """Channel bases for one TX chain against a batch of RX positions.

        The position-sweep fast path (coverage maps, placement scans): one
        :meth:`RayTracer.trace_batch` call replaces P scalar ambient traces
        and each element's two-hop geometry is traced once for all P points
        (:meth:`ChannelBasis.trace_batch`).  Per-point results match
        :meth:`basis_for` against a probe device at the same position with
        the same antenna.
        """
        tx = tx_device.chains[tx_chain]
        with global_tracer().span(_SPAN_BASES_FOR_POINTS):
            # The ambient batch is value-cached process-wide: coverage runs
            # that revisit a (scene, TX, grid) — e.g. no-array vs pattern
            # phases of the same placement — trace the grid once.
            ambient = global_trace_cache().get_or_trace_batch(
                self.tracer, tx.position, rx_points, tx.antenna, rx_antenna
            )
            return ChannelBasis.trace_batch(
                self.array,
                tx.position,
                rx_points,
                self.tracer,
                tx_antenna=tx.antenna,
                rx_antenna=rx_antenna,
                num_subcarriers=self.num_subcarriers,
                bandwidth_hz=self.bandwidth_hz,
                ambient=ambient,
            )

    def snr_function(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        mask: Optional[np.ndarray] = None,
        tx_chain: int = 0,
        rx_chain: int = 0,
    ) -> Callable[[ArrayConfiguration], np.ndarray]:
        """A fast ``configuration -> per-subcarrier SNR (dB)`` callable.

        Backed by the precomputed channel basis, so each call is an O(K)
        gather instead of a re-trace — the measurement callback a
        :class:`~repro.core.controller.PressController` sounds the channel
        with when it runs many optimisation rounds against one geometry.
        ``mask`` restricts the returned SNR to selected subcarriers.
        """
        basis = self.basis_for(tx_device, rx_device, tx_chain, rx_chain)

        def measure(configuration: ArrayConfiguration) -> np.ndarray:
            snr = snr_db_from_cfr(
                basis.cfr(configuration),
                self.num_subcarriers,
                self.bandwidth_hz,
                tx_power_dbm=tx_device.tx_power_dbm,
                noise_figure_db=rx_device.noise_figure_db,
            )
            return snr if mask is None else snr[mask]

        return measure

    def cfr_function(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        tx_chain: int = 0,
        rx_chain: int = 0,
    ) -> Callable[[ArrayConfiguration], np.ndarray]:
        """A ``configuration -> complex CFR`` callable on the cached basis.

        The measurement shape :func:`repro.core.faults.detect_unresponsive_elements`
        consumes for maintenance sweeps.
        """
        basis = self.basis_for(tx_device, rx_device, tx_chain, rx_chain)
        return basis.cfr

    def basis_evaluator(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        objective: Callable[[np.ndarray], float],
        mask: Optional[np.ndarray] = None,
        tx_chain: int = 0,
        rx_chain: int = 0,
    ) -> BasisEvaluator:
        """A basis-backed score function using this testbed's radio settings."""
        return self.basis_for(tx_device, rx_device, tx_chain, rx_chain).evaluator(
            objective,
            tx_power_dbm=tx_device.tx_power_dbm,
            noise_figure_db=rx_device.noise_figure_db,
            mask=mask,
        )

    # ------------------------------------------------------------------
    # SISO measurements
    # ------------------------------------------------------------------
    def channel(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        configuration: ArrayConfiguration,
        tx_chain: int = 0,
        rx_chain: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> Channel:
        """The composed channel (environment + configured PRESS paths).

        With an ``rng`` and non-zero drift, the ambient part is a fresh
        coherence-drifted realisation (see ``drift_phase_rad``).
        """
        tx = tx_device.chains[tx_chain]
        rx = rx_device.chains[rx_chain]
        environment = self._drifted(
            self.environment_paths(tx_device, rx_device, tx_chain, rx_chain), rng
        )
        return self.array.channel(
            configuration,
            environment,
            tx.position,
            rx.position,
            self.tracer,
            tx.antenna,
            rx.antenna,
            num_subcarriers=self.num_subcarriers,
            bandwidth_hz=self.bandwidth_hz,
        )

    def measure_csi(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        configuration: ArrayConfiguration,
        rng: Optional[np.random.Generator] = None,
    ) -> ChannelObservation:
        """One CSI measurement, as the paper's receiver would estimate it.

        With an ``rng``, the observation carries single-frame channel-
        estimation noise; without, it is the exact channel.
        """
        channel = self.channel(tx_device, rx_device, configuration, rng=rng)
        return channel.observe(
            tx_power_dbm=tx_device.tx_power_dbm,
            noise_figure_db=rx_device.noise_figure_db,
            rng=rng,
        )

    def sweep(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        repetitions: int = 10,
        rng: Optional[np.random.Generator] = None,
        used_mask: Optional[np.ndarray] = None,
        mode: str = "basis",
        used_only_mask: Optional[np.ndarray] = None,
    ) -> SweepResult:
        """Iterate all configurations ``repetitions`` times (the §3.2 loop).

        "we iterate through the 64 combinations 10 times and calculate
        statistics on the SNR for each PRESS antenna configuration."

        ``mode="basis"`` (default) evaluates the sweep from the precomputed
        channel basis — geometry traced once, every configuration's CFR a
        vectorized gather + sum; ``mode="legacy"`` keeps the original
        measure-per-configuration route.  Both modes draw from ``rng`` in
        the same order, so identical seeds give identical results (to
        machine precision) either way.

        ``used_only_mask`` is a deprecated alias for ``used_mask``.
        """
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        if used_only_mask is not None:
            warnings.warn(
                "Testbed.sweep's used_only_mask is deprecated; "
                "pass used_mask instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if used_mask is not None:
                raise ValueError(
                    "pass either used_mask or the deprecated used_only_mask, not both"
                )
            used_mask = used_only_mask
        if mode not in ("basis", "legacy"):
            raise ValueError(f"mode must be 'basis' or 'legacy', got {mode!r}")
        configurations = self.configurations
        with global_tracer().span(_SPAN_SWEEP):
            if mode == "legacy":
                snr = np.empty(
                    (repetitions, len(configurations), self.num_subcarriers)
                )
                for rep in range(repetitions):
                    for index, configuration in enumerate(configurations):
                        observation = self.measure_csi(
                            tx_device, rx_device, configuration, rng=rng
                        )
                        snr[rep, index] = observation.snr_db
            else:
                snr = self._sweep_basis(tx_device, rx_device, repetitions, rng)
        if used_mask is None:
            if self.num_subcarriers == 64:
                used_mask = OfdmParams().used_mask()
            else:
                used_mask = np.ones(self.num_subcarriers, dtype=bool)
        else:
            used_mask = np.asarray(used_mask)
            if used_mask.ndim != 1 or used_mask.shape[0] != self.num_subcarriers:
                raise ValueError(
                    f"used_mask must be 1-D with length {self.num_subcarriers}, "
                    f"got shape {used_mask.shape}"
                )
        return SweepResult(
            snr_db=snr, configurations=configurations, used_mask=used_mask
        )

    def _sweep_basis(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        repetitions: int,
        rng: Optional[np.random.Generator],
    ) -> np.ndarray:
        """The fast sweep path: precomputed basis, vectorized CFR evaluation.

        Without an rng the measurement is deterministic, so the whole
        (repetitions x configurations x subcarriers) tensor is one
        vectorized evaluation.  With an rng, each measurement still needs
        its own drift/noise draws in legacy order (repetition-major,
        configuration-major) for stream equivalence — but every draw now
        feeds O(K) numpy ops on the precomputed basis instead of a
        re-trace.  Delegates to the module-level :func:`sweep_basis_snr`
        (which parallel figure runners also call against shipped bases).
        """
        basis = self.basis_for(tx_device, rx_device)
        return sweep_basis_snr(
            basis,
            repetitions,
            rng,
            tx_power_dbm=tx_device.tx_power_dbm,
            noise_figure_db=rx_device.noise_figure_db,
            drift_phase_rad=self.drift_phase_rad,
            drift_amplitude=self.drift_amplitude,
        )

    # ------------------------------------------------------------------
    # MIMO measurements
    # ------------------------------------------------------------------
    def mimo_matrices(
        self,
        tx_device: SdrDevice,
        rx_device: SdrDevice,
        configuration: ArrayConfiguration,
        rng: Optional[np.random.Generator] = None,
        estimation_error_std: float = 0.0,
        mode: str = "basis",
    ) -> np.ndarray:
        """Per-subcarrier MIMO channel matrices for one configuration.

        Returns shape (num_subcarriers, num_rx_chains, num_tx_chains).
        ``estimation_error_std`` adds relative complex-Gaussian estimation
        error per entry, standing in for the finite-SNR CSI estimates of
        §3.2.3 (which averages 50 measurements per configuration).

        ``mode="basis"`` reuses each chain pair's precomputed channel
        basis (geometry traced once per pair, drift applied as a phasor
        scaling of the ambient gain vector); ``mode="legacy"`` re-traces
        the element paths per call.  Both draw from ``rng`` identically.
        """
        if mode not in ("basis", "legacy"):
            raise ValueError(f"mode must be 'basis' or 'legacy', got {mode!r}")
        freqs = subcarrier_frequencies(self.num_subcarriers, self.bandwidth_hz)
        num_rx = rx_device.num_chains
        num_tx = tx_device.num_chains
        h = np.zeros((self.num_subcarriers, num_rx, num_tx), dtype=complex)
        for i in range(num_rx):
            for j in range(num_tx):
                if mode == "basis":
                    basis = self.basis_for(tx_device, rx_device, j, i)
                    factors = self._drift_factors(basis.num_ambient_paths, rng)
                    h[:, i, j] = basis.cfr(
                        configuration,
                        ambient_gains=(
                            None
                            if factors is None
                            else basis.ambient_gains * factors
                        ),
                    )
                    continue
                tx = tx_device.chains[j]
                rx = rx_device.chains[i]
                env = self._drifted(
                    self.environment_paths(tx_device, rx_device, j, i), rng
                )
                press = self.array.element_paths(
                    configuration,
                    tx.position,
                    rx.position,
                    self.tracer,
                    tx.antenna,
                    rx.antenna,
                )
                h[:, i, j] = paths_to_cfr(list(env) + press, freqs)
        if estimation_error_std > 0:
            if rng is None:
                raise ValueError("estimation_error_std > 0 requires an rng")
            scale = estimation_error_std * np.sqrt(np.mean(np.abs(h) ** 2))
            noise = scale / np.sqrt(2.0) * (
                rng.standard_normal(h.shape) + 1j * rng.standard_normal(h.shape)
            )
            h = h + noise
        return h
