"""Time synchronisation between the radios and the switch micro-controller.

§3.1: "We control the RF switch through a micro-controller time
synchronized with the WARP radios' transmissions."  §3.2: because of setup
latency, sweeping all 64 configurations took ~5 seconds — far beyond the
channel coherence time, which the paper compensates for by averaging 10
sweeps.  This module models exactly that bookkeeping: clocks with offset
and drift, a synchronisation protocol that bounds their disagreement, and
sweep-duration accounting used by the control-plane benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Clock", "sync_clocks", "SweepTiming"]


@dataclass
class Clock:
    """A free-running clock with offset and drift relative to true time.

    Attributes
    ----------
    offset_s:
        Current offset from the reference timebase.
    drift_ppm:
        Rate error in parts per million (crystal oscillators: 1-20 ppm).
    """

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def read(self, true_time_s: float) -> float:
        """The time this clock shows at true time ``true_time_s``."""
        return true_time_s * (1.0 + self.drift_ppm * 1e-6) + self.offset_s

    def error_at(self, true_time_s: float) -> float:
        """Absolute error versus true time."""
        return abs(self.read(true_time_s) - true_time_s)


def sync_clocks(clock: Clock, true_time_s: float, residual_s: float = 1e-6) -> Clock:
    """Synchronise ``clock`` to the reference at ``true_time_s``.

    Models a sync pulse (e.g. a GPIO trigger from the WARP to the
    micro-controller): the offset collapses to ``residual_s`` worth of
    trigger jitter, drift is untouched (it re-accumulates until the next
    sync).
    """
    if residual_s < 0:
        raise ValueError(f"residual_s must be non-negative, got {residual_s}")
    drift_component = true_time_s * clock.drift_ppm * 1e-6
    return Clock(offset_s=residual_s - drift_component, drift_ppm=clock.drift_ppm)


def max_unsynced_interval_s(drift_ppm: float, tolerance_s: float) -> float:
    """How long a clock can free-run before exceeding a timing tolerance.

    Used to decide how often the controller must re-sync the switch
    micro-controllers to keep configuration changes aligned with frame
    boundaries (a packet-timescale switching requirement from §2).
    """
    if tolerance_s <= 0:
        raise ValueError(f"tolerance_s must be positive, got {tolerance_s}")
    if drift_ppm <= 0:
        return float("inf")
    return tolerance_s / (drift_ppm * 1e-6)


@dataclass(frozen=True)
class SweepTiming:
    """Timing of a full configuration sweep (the §3.2 measurement loop).

    Attributes
    ----------
    num_configurations:
        Configurations per sweep (64 in the prototype).
    per_configuration_s:
        Time per configuration: actuation + frame + logging.
    """

    num_configurations: int = 64
    per_configuration_s: float = 5.0 / 64.0

    def __post_init__(self) -> None:
        if self.num_configurations <= 0:
            raise ValueError(
                f"num_configurations must be positive, got {self.num_configurations}"
            )
        if self.per_configuration_s <= 0:
            raise ValueError(
                f"per_configuration_s must be positive, got {self.per_configuration_s}"
            )

    @property
    def sweep_duration_s(self) -> float:
        """Duration of one full sweep (~5 s for the paper's prototype)."""
        return self.num_configurations * self.per_configuration_s

    def exceeds_coherence(self, coherence_s: float) -> bool:
        """Whether a sweep outlives the channel coherence time.

        True for the prototype (5 s >> 80 ms), which is why §3.2 averages
        over 10 repeated sweeps instead of comparing within one.
        """
        if coherence_s <= 0:
            raise ValueError(f"coherence_s must be positive, got {coherence_s}")
        return self.sweep_duration_s > coherence_s
