"""Environment-as-a-service: the asyncio serving layer.

The PRESS/metasurface programme (Liaskos et al., arXiv:1812.11429)
frames the programmable environment as a shared multi-tenant resource
configured on request; RFocus (arXiv:1905.05130) shows the per-request
work is tiny once per-environment state is amortized.  This package is
that shape over the repo's primitives: a long-running in-process service
with micro-batched evaluation, scenario-sharded hot sessions behind the
process-wide trace cache, explicit backpressure, and a deterministic
load harness.  See DESIGN.md §11.
"""

from .loadgen import (
    REJECTED,
    LoadResult,
    mixed_requests,
    run_closed_loop,
    run_open_loop,
)
from .scenarios import ScenarioSession, ScenarioSpec, build_session
from .service import (
    ActuateRequest,
    ActuateResult,
    CoverageRequest,
    CoverageResult,
    EnvironmentService,
    EvaluateRequest,
    EvaluateResult,
    JointLinkSpec,
    JointOptimizeRequest,
    JointOptimizeResult,
    SearchRequest,
    SearchResult,
    ServiceClient,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    SweepRequest,
    SweepResult,
)

__all__ = [
    "ActuateRequest",
    "ActuateResult",
    "CoverageRequest",
    "CoverageResult",
    "EnvironmentService",
    "EvaluateRequest",
    "EvaluateResult",
    "JointLinkSpec",
    "JointOptimizeRequest",
    "JointOptimizeResult",
    "LoadResult",
    "REJECTED",
    "ScenarioSession",
    "ScenarioSpec",
    "SearchRequest",
    "SearchResult",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "SweepRequest",
    "SweepResult",
    "build_session",
    "mixed_requests",
    "run_closed_loop",
    "run_open_loop",
]
