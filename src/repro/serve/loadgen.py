"""Deterministic load generation for the serving layer.

Two arrival disciplines drive the same request list:

- **Closed loop** — ``concurrency`` workers, each issuing its share of
  the requests back-to-back (worker ``i`` takes ``requests[i::C]`` in
  order).  Offered load tracks service speed; this is the throughput
  measurement mode.
- **Open loop** — requests arrive on a seeded Poisson process
  (exponential inter-arrival gaps) regardless of completion; offered
  load is external, so overload actually builds queue depth.  This is
  the backpressure/latency measurement mode.

Everything is seeded and deterministic: the request mix comes from one
``default_rng(seed)``, and per-request responses are pure functions of
the requests (see :mod:`repro.serve.service`), so a load run's responses
are reproducible bit-for-bit at any concurrency.  Wall-clock latency is
measured only when the caller injects a ``timer`` callable (benchmarks
pass ``time.perf_counter``); the library itself reads no clocks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..obs.slo import SloPolicy, SloStatus, evaluate_load_result
from .scenarios import ScenarioSpec
from .service import (
    ActuateRequest,
    EvaluateRequest,
    Request,
    ServiceOverloaded,
    SweepRequest,
)

__all__ = ["LoadResult", "mixed_requests", "run_closed_loop", "run_open_loop"]

#: Placeholder response for requests shed by backpressure.
REJECTED = "rejected"


@dataclass(frozen=True, eq=False)
class LoadResult:
    """Outcome of one load run.

    ``responses[i]`` is request ``i``'s result object, :data:`REJECTED`
    when it was shed by backpressure, or the raised exception when it
    failed.  ``latencies_s[i]`` is present (not ``nan``) only when a
    timer was injected and the request completed.
    """

    responses: tuple
    latencies_s: np.ndarray

    @property
    def completed(self) -> int:
        return sum(
            1
            for response in self.responses
            if response is not REJECTED and not isinstance(response, Exception)
        )

    @property
    def rejected(self) -> int:
        return sum(1 for response in self.responses if response is REJECTED)

    @property
    def failed(self) -> int:
        return sum(
            1 for response in self.responses if isinstance(response, Exception)
        )

    def latency_percentiles(self, percentiles=(50.0, 95.0, 99.0)) -> dict:
        """Completion-latency percentiles (seconds), from timed requests."""
        timed = self.latencies_s[~np.isnan(self.latencies_s)]
        if timed.size == 0:
            return {f"p{p:g}": float("nan") for p in percentiles}
        return {
            f"p{p:g}": float(np.percentile(timed, p)) for p in percentiles
        }

    def evaluate_slo(self, policy: SloPolicy) -> list[SloStatus]:
        """Judge this run against an SLO policy.

        Latency objectives see the exact sample quantiles of the timed
        latencies; rate objectives see the run's rejection/error/request
        counts (see :func:`repro.obs.slo.evaluate_load_result`).
        """
        return evaluate_load_result(
            policy,
            [float(v) for v in self.latencies_s],
            completed=self.completed,
            rejected=self.rejected,
            failed=self.failed,
        )


def mixed_requests(
    scenarios: Sequence[ScenarioSpec],
    num_requests: int,
    seed: int,
    evaluate_weight: float = 0.6,
    actuate_weight: float = 0.3,
    sweep_weight: float = 0.1,
    skew: float = 0.0,
    configurations_per_evaluate: int = 4,
) -> list[Request]:
    """A seeded mixed workload over a scenario set.

    ``skew`` shapes the scenario popularity: ``0`` is uniform, larger
    values concentrate traffic on the first scenarios (weights
    proportional to ``1 / rank^skew`` — the classic Zipf shape of "a few
    rooms get almost all the traffic").  Configurations are drawn
    uniformly from each scenario's nominal SP4T state range; the mix of
    operations follows the given weights.  Same arguments, same request
    list — always.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not scenarios:
        raise ValueError("need at least one scenario")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(scenarios) + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    op_weights = np.array([evaluate_weight, actuate_weight, sweep_weight])
    op_weights = op_weights / op_weights.sum()
    requests: list[Request] = []
    num_states = 4  # SP4T elements throughout the study scenes
    for _ in range(num_requests):
        spec = scenarios[int(rng.choice(len(scenarios), p=weights))]
        num_elements = _scenario_elements(spec)
        op = int(rng.choice(3, p=op_weights))
        if op == 0:
            configurations = tuple(
                tuple(
                    int(s)
                    for s in rng.integers(0, num_states, size=num_elements)
                )
                for _ in range(configurations_per_evaluate)
            )
            requests.append(
                EvaluateRequest(scenario=spec, configurations=configurations)
            )
        elif op == 1:
            configuration = tuple(
                int(s) for s in rng.integers(0, num_states, size=num_elements)
            )
            requests.append(
                ActuateRequest(scenario=spec, configuration=configuration)
            )
        else:
            requests.append(
                SweepRequest(scenario=spec, repetitions=1, seed=None)
            )
    return requests


#: The §3 study array size (``StudyConfig.num_elements``); hardcoding it
#: keeps request generation scene-build-free.
NLOS_NUM_ELEMENTS = 3


def _scenario_elements(spec: ScenarioSpec) -> int:
    """Element count of a spec's array without building the scene."""
    if spec.kind == "large":
        return spec.num_elements
    return NLOS_NUM_ELEMENTS


async def run_closed_loop(
    submit: Callable,
    requests: Sequence[Request],
    concurrency: int,
    timer: Optional[Callable[[], float]] = None,
) -> LoadResult:
    """Drive requests through ``submit`` with C closed-loop workers.

    ``submit`` is an awaitable callable of one request — typically
    ``service.submit`` or a retrying wrapper.  Worker ``i`` issues
    ``requests[i::concurrency]`` strictly in order, a new request only
    after its previous one resolved.  Backpressure rejections are
    recorded as :data:`REJECTED`, other exceptions as the exception —
    the run itself never raises.
    """
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    responses: list = [None] * len(requests)
    latencies = np.full(len(requests), np.nan)

    async def worker(start: int) -> None:
        for index in range(start, len(requests), concurrency):
            begin = timer() if timer is not None else 0.0
            try:
                responses[index] = await submit(requests[index])
            except ServiceOverloaded:
                responses[index] = REJECTED
                continue
            except Exception as error:
                responses[index] = error
                continue
            if timer is not None:
                latencies[index] = timer() - begin

    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    return LoadResult(responses=tuple(responses), latencies_s=latencies)


async def run_open_loop(
    submit: Callable,
    requests: Sequence[Request],
    rate_hz: float,
    seed: int,
    timer: Optional[Callable[[], float]] = None,
) -> LoadResult:
    """Fire requests on a seeded Poisson arrival process.

    Inter-arrival gaps are exponential with mean ``1/rate_hz`` drawn
    from ``default_rng(seed)``; each request is launched as its own task
    at its arrival instant whether or not earlier ones finished — so
    sustained ``rate_hz`` above service capacity exercises backpressure
    rather than implicitly throttling the generator.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_hz, size=len(requests))
    responses: list = [None] * len(requests)
    latencies = np.full(len(requests), np.nan)

    async def issue(index: int) -> None:
        begin = timer() if timer is not None else 0.0
        try:
            responses[index] = await submit(requests[index])
        except ServiceOverloaded:
            responses[index] = REJECTED
            return
        except Exception as error:
            responses[index] = error
            return
        if timer is not None:
            latencies[index] = timer() - begin

    tasks = []
    for index, gap in enumerate(gaps):
        tasks.append(asyncio.ensure_future(issue(index)))
        await asyncio.sleep(float(gap))
    await asyncio.gather(*tasks)
    return LoadResult(responses=tuple(responses), latencies_s=latencies)
