"""Scenario registry for the serving layer: specs to hot sessions.

A :class:`ScenarioSpec` is a small immutable *value* naming one served
environment — which study scene, which placement seed, how many elements.
Being a frozen dataclass it hashes by value, so it doubles as the shard
key of the service's session layer: every request carrying an equal spec
lands on the same :class:`ScenarioSession`, and the expensive part (scene
construction + the traced :class:`~repro.core.basis.ChannelBasis`) is
paid once per spec instead of once per request.  The underlying geometry
traces additionally go through the process-wide
:func:`~repro.em.trace_cache.global_trace_cache`, so even rebuilding an
evicted session reuses cached traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..core.basis import ChannelBasis
from ..em.channel import snr_db_from_cfr
from ..experiments.common import (
    StudySetup,
    build_large_array_setup,
    build_nlos_setup,
    used_subcarrier_mask,
)

__all__ = ["ScenarioSpec", "ScenarioSession", "build_session"]

#: Scene families the service knows how to build.
SCENARIO_KINDS = ("nlos", "large")


@dataclass(frozen=True)
class ScenarioSpec:
    """Value-identity of one served environment.

    Attributes
    ----------
    kind:
        ``"nlos"`` for the §3 blocked-link study scene (enumerable
        configuration space — sweep/evaluate/actuate all work), or
        ``"large"`` for a wall-sized array scene (delta-powered search
        territory; exhaustive sweeps raise ``SearchSpaceTooLarge``).
    placement:
        Placement seed threaded to the scene builder; distinct values are
        distinct scenarios with independent sessions.
    num_elements:
        Array size for ``kind="large"`` (ignored for ``"nlos"``).
    """

    kind: str = "nlos"
    placement: int = 0
    num_elements: int = 48

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; expected one of "
                f"{SCENARIO_KINDS}"
            )
        if self.num_elements <= 0:
            raise ValueError(
                f"num_elements must be positive, got {self.num_elements}"
            )


@dataclass(frozen=True, eq=False)
class ScenarioSession:
    """One hot scenario: built scene, traced basis, radio parameters.

    Immutable once built; concurrent readers (interleaved request
    handlers, worker processes the basis is shipped to) share it without
    coordination.  All scoring helpers are pure functions of their
    arguments plus this frozen state.
    """

    spec: ScenarioSpec
    setup: StudySetup
    basis: ChannelBasis
    mask: np.ndarray = field(repr=False)

    @property
    def tx_power_dbm(self) -> float:
        return self.setup.tx_device.tx_power_dbm

    @property
    def noise_figure_db(self) -> float:
        return self.setup.rx_device.noise_figure_db

    def snr_rows(self, indices: np.ndarray) -> np.ndarray:
        """Per-subcarrier SNR (dB) rows for a configuration index matrix.

        The batched fast path behind both ``evaluate`` and ``actuate``
        requests: one vectorized basis evaluation for the whole batch.
        Row ``c`` depends only on ``indices[c]`` (the state-tensor gather
        and the elementwise SNR map are both per-row), so a coalesced
        batch is bit-identical to evaluating each row alone — the
        micro-batcher's determinism rests on this.
        """
        cfr = self.basis.evaluate(np.asarray(indices, dtype=np.int64))
        return snr_db_from_cfr(
            cfr,
            self.basis.num_subcarriers,
            self.basis.bandwidth_hz,
            tx_power_dbm=self.tx_power_dbm,
            noise_figure_db=self.noise_figure_db,
        )

    def mean_used_snr(self, snr_rows: np.ndarray) -> np.ndarray:
        """Mean SNR over the used (data + pilot) subcarriers, per row.

        Deliberately NOT ``mean(axis=1)``: numpy's axis reduction picks
        its pairwise-summation blocking from the *batch* shape, which
        perturbs the last bits of a row's mean depending on who else
        shares the batch.  ``np.add.reduceat`` sums each row strictly
        left-to-right — one vectorized call whose per-row result is
        independent of batch composition, so a coalesced response is
        bit-identical to the same request served alone.
        """
        used = np.ascontiguousarray(snr_rows[:, self.mask])
        width = used.shape[1]
        flat = used.reshape(-1)
        sums = np.add.reduceat(flat, np.arange(0, flat.size, width))
        return sums / width

    @cached_property
    def state_bounds(self) -> np.ndarray:
        """Per-element state counts as an array, for vectorized validation."""
        bounds = np.asarray(self.basis.space.state_counts, dtype=np.int64)
        bounds.setflags(write=False)
        return bounds

    def validate_rows(self, configurations) -> np.ndarray:
        """Normalise + validate a request's configuration rows, vectorized.

        Returns the ``(C, N)`` int64 index matrix.  Validation is
        per-request so one bad row poisons only its own response, never
        the coalesced batch it would have ridden in.
        """
        rows = np.asarray(configurations, dtype=np.int64)
        if rows.ndim == 1:
            rows = rows[None, :]
        space = self.basis.space
        if rows.ndim != 2 or rows.shape[1] != space.num_elements:
            raise ValueError(
                f"configuration rows have shape {rows.shape}, scenario "
                f"{self.spec!r} expects (*, {space.num_elements})"
            )
        if bool((rows < 0).any()) or bool((rows >= self.state_bounds).any()):
            raise ValueError(
                f"configuration state out of range for per-element bounds "
                f"{self.state_bounds.tolist()}"
            )
        return rows

    def validate_configuration(self, configuration: tuple) -> None:
        """Single-row convenience wrapper over :meth:`validate_rows`."""
        self.validate_rows(np.asarray(configuration, dtype=np.int64))


def build_session(spec: ScenarioSpec) -> ScenarioSession:
    """Build the hot session for one scenario spec.

    This is the expensive, once-per-scenario step: scene construction,
    placement, and the full basis trace (routed through the chunked
    tracer for large arrays by ``Testbed.basis_for``).  The basis is
    warmed — its lazy caches materialized — before the session is
    published, so concurrent request handlers only ever read it.
    """
    if spec.kind == "nlos":
        setup = build_nlos_setup(spec.placement)
    else:
        setup = build_large_array_setup(
            spec.placement, num_elements=spec.num_elements
        )
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    basis.warm()
    return ScenarioSession(
        spec=spec,
        setup=setup,
        basis=basis,
        mask=used_subcarrier_mask(),
    )
