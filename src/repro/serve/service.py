"""The in-process environment service: micro-batcher, shards, backpressure.

``EnvironmentService`` fronts the repo's primitives (configuration
evaluation, actuation, sounding sweeps, large-array search, coverage
grids) as a long-running asyncio service.  Three mechanisms carry the
perf story:

1. **Micro-batching** — concurrent ``evaluate``/``actuate`` requests for
   the same scenario are coalesced, within a bounded window
   (``batch_window_s``, capped at ``max_batch``), into *one* vectorized
   basis evaluation.  Per-request work collapses from one full numpy
   dispatch each to one shared gather + SNR map.  Determinism is free:
   the basis evaluation is row-independent (see
   :meth:`~repro.serve.scenarios.ScenarioSession.snr_rows`), so batch
   composition — and therefore arrival interleaving — cannot change any
   individual response.
2. **Scenario-sharded sessions** — requests are routed by their
   :class:`~repro.serve.scenarios.ScenarioSpec` value to a per-scenario
   shard; the first request builds the scene + basis once
   (:func:`~repro.serve.scenarios.build_session`), later ones reuse it.
   Sessions live in a bounded LRU; geometry traces additionally sit in
   the process-wide :func:`~repro.em.trace_cache.global_trace_cache`, so
   even a rebuilt session skips re-tracing.  CPU-bound search requests
   are routed onto the persistent shared process pools of
   :mod:`repro.experiments.runner` when ``search_jobs`` asks for them.
3. **Backpressure** — at most ``max_pending`` requests may be queued
   (admitted but not yet flushed); beyond that :meth:`submit` raises
   :class:`ServiceOverloaded` immediately instead of letting latency
   grow without bound.  Rejections are synchronous and cheap, so a
   closed-loop client can retry on its own schedule.

Everything is single-event-loop and socket-free: tests and benchmarks
drive the service through :class:`ServiceClient` directly.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..em.geometry import Point
from ..experiments.runner import resolve_jobs, shared_pool, traced_call
from ..obs.context import (
    RequestContext,
    RequestTraceStore,
    bind_context,
    current_context,
    emit_request_span,
    new_request_id,
    stitch_timeline,
)
from ..obs.export import TelemetryStreamer
from ..obs.metrics import (
    counter_handle,
    enabled,
    gauge_handle,
    histogram_handle,
    monotonic_s,
)
from ..obs.tracing import SpanRecord, global_tracer, new_span_id
from ..sdr.testbed import sweep_basis_snr
from . import work
from .scenarios import ScenarioSession, ScenarioSpec, build_session

__all__ = [
    "ActuateRequest",
    "ActuateResult",
    "CoverageRequest",
    "CoverageResult",
    "EnvironmentService",
    "EvaluateRequest",
    "EvaluateResult",
    "JointLinkSpec",
    "JointOptimizeRequest",
    "JointOptimizeResult",
    "SearchRequest",
    "SearchResult",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "SweepRequest",
    "SweepResult",
]

# Stale-proof handles, not raw instruments: a raw reference captured at
# import keeps recording into a dead registry after
# ``reset_observability(clear=True)`` while snapshots read fresh zeros.
# Handles re-resolve through the live registry (identity-cached, so the
# hot path pays one ``is`` check).
_REQUESTS = counter_handle("serve.requests")
_REJECTIONS = counter_handle("serve.rejections")
_ERRORS = counter_handle("serve.errors")
_BATCHES = counter_handle("serve.batches")
_BATCHED_REQUESTS = counter_handle("serve.batched_requests")
_SESSION_HITS = counter_handle("serve.session_hits")
_SESSION_MISSES = counter_handle("serve.session_misses")
_SESSION_EVICTIONS = counter_handle("serve.session_evictions")
_PENDING = gauge_handle("serve.pending")
_SESSIONS = gauge_handle("serve.sessions")

# End-to-end (submit -> resolved reply) latency per request type, measured
# with the obs-sanctioned monotonic clock.  9 bins/decade keeps quantile
# estimates within ~13% — tight enough to judge SLO thresholds.
_EVALUATE_LATENCY = histogram_handle(
    "serve.evaluate.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)
_ACTUATE_LATENCY = histogram_handle(
    "serve.actuate.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)
_SWEEP_LATENCY = histogram_handle(
    "serve.sweep.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)
_SEARCH_LATENCY = histogram_handle(
    "serve.search.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)
_JOINT_LATENCY = histogram_handle(
    "serve.joint.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)
_COVERAGE_LATENCY = histogram_handle(
    "serve.coverage.request_latency_s", lo=1e-6, hi=1e3, bins_per_decade=9
)

_SPAN_BATCH = "serve.batch"
_SPAN_SESSION_BUILD = "serve.session_build"
_SPAN_REQUEST = "serve.request"
_SPAN_QUEUE = "serve.queue"
_SPAN_BATCH_MEMBER = "serve.batch_member"


class ServiceOverloaded(RuntimeError):
    """Raised by :meth:`EnvironmentService.submit` when the pending queue
    is full — explicit load shedding instead of unbounded latency."""


class ServiceClosed(RuntimeError):
    """Raised when submitting to a service that has been closed."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`EnvironmentService`.

    Attributes
    ----------
    batch_window_s:
        How long a shard's first queued request waits for company before
        its batch flushes.  ``0.0`` still coalesces: the flusher yields
        to the event loop once, so every request submitted in the same
        scheduling round joins the batch.
    max_batch:
        A shard flushes immediately once this many requests are queued,
        bounding both latency and the size of one vectorized evaluation.
    max_pending:
        Service-wide cap on admitted-but-unflushed requests; beyond it
        :meth:`EnvironmentService.submit` raises
        :class:`ServiceOverloaded`.
    session_capacity:
        How many scenario sessions stay hot in the LRU.
    search_jobs:
        Worker-pool sizing for search requests, as in
        :func:`repro.experiments.runner.resolve_jobs` (``None``/``1`` =
        inline in the event loop process, ``<= 0`` = all CPUs).  Pools
        are the persistent shared executors — no per-request spin-up.
    trace_sample:
        Deterministic request-trace sampling: every ``trace_sample``-th
        admitted request gets a full stitched span timeline (``1`` =
        every request, ``0`` = request tracing off).  The counter-based
        choice uses no entropy, the first admitted request is always
        sampled, and requests submitted under an explicitly bound
        context (``ServiceClient.bind``) are always traced regardless —
        the operator's force-trace hook.  Unsampled requests still feed
        the per-type latency histograms and counters; sampling bounds
        only the span-emission cost, keeping tracing overhead on the
        batched throughput path under its <3% budget.
    trace_capacity:
        How many distinct requests' stitched span timelines the service
        retains (oldest evicted wholesale beyond this).
    telemetry_path:
        When set, the service appends one JSONL telemetry sample
        (cumulative counters/gauges + histogram quantile digests, see
        :class:`repro.obs.export.TelemetryStreamer`) to this file every
        ``telemetry_interval_s`` while it runs — the stream ``repro top``
        tails.
    telemetry_interval_s:
        Sampling cadence of the telemetry stream.
    """

    batch_window_s: float = 0.0
    max_batch: int = 64
    max_pending: int = 256
    session_capacity: int = 8
    search_jobs: Optional[int] = None
    trace_sample: int = 16
    trace_capacity: int = 256
    telemetry_path: Optional[str] = None
    telemetry_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.session_capacity <= 0:
            raise ValueError("session_capacity must be positive")
        if self.trace_sample < 0:
            raise ValueError("trace_sample must be >= 0")
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        if self.telemetry_interval_s <= 0:
            raise ValueError("telemetry_interval_s must be positive")


# ---------------------------------------------------------------------------
# Request / result values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvaluateRequest:
    """Score a batch of configurations: mean used-subcarrier SNR each."""

    scenario: ScenarioSpec
    configurations: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class EvaluateResult:
    scores_db: tuple[float, ...]


@dataclass(frozen=True)
class ActuateRequest:
    """Apply one configuration; observe the full per-subcarrier SNR."""

    scenario: ScenarioSpec
    configuration: tuple[int, ...]


@dataclass(frozen=True)
class ActuateResult:
    snr_db: tuple[float, ...]
    mean_used_snr_db: float


@dataclass(frozen=True)
class SweepRequest:
    """Exhaustive configuration sweep with optional coherence drift.

    ``seed=None`` is the drift-free deterministic sweep; an integer seed
    draws per-sounding drift from its own generator, so equal requests
    get equal answers regardless of what else the service is running.
    """

    scenario: ScenarioSpec
    repetitions: int = 1
    seed: Optional[int] = None
    drift_phase_rad: float = 0.0
    drift_amplitude: float = 0.0


@dataclass(frozen=True)
class SweepResult:
    """Per-configuration mean used-subcarrier SNR over all repetitions."""

    scores_db: tuple[float, ...]
    best_index: int


@dataclass(frozen=True)
class SearchRequest:
    """Run a named configuration searcher (greedy / rfocus / random)."""

    scenario: ScenarioSpec
    searcher: str = "greedy"
    seed: int = 0


@dataclass(frozen=True)
class SearchResult:
    best_configuration: tuple[int, ...]
    best_score_db: float
    num_evaluations: int


@dataclass(frozen=True)
class JointLinkSpec:
    """One tenant link in a joint-optimisation request.

    The link's receiver sits at an offset from the scenario's RX anchor
    (the same addressing coverage grids use), so a spec is a small pure
    value and the per-link geometry rides the process-wide trace cache.
    """

    name: str
    dx_m: float = 0.0
    dy_m: float = 0.0
    weight: float = 1.0


@dataclass(frozen=True)
class JointOptimizeRequest:
    """Optimise one scenario's array for several links at once.

    ``strategy`` picks the §2 spectrum point ("joint", "per-link" or
    "hybrid"), ``searcher`` a named configuration searcher (as in
    :class:`SearchRequest` — delta-powered on large arrays), and
    ``aggregate`` the joint scoring mode ("mean", "worst" or
    "lexicographic").  Deterministic: equal requests get bit-identical
    answers at any batch window, matching a direct
    :func:`repro.core.joint.optimize_joint` call over the same bases.
    """

    scenario: ScenarioSpec
    links: tuple[JointLinkSpec, ...]
    strategy: str = "joint"
    searcher: str = "greedy"
    seed: int = 0
    aggregate: str = "mean"
    tolerance: float = 1.0


@dataclass(frozen=True)
class JointOptimizeResult:
    """Per-link assignments and scores, aligned with the request's links."""

    strategy: str
    configurations: tuple[tuple[int, ...], ...]
    scores_db: tuple[float, ...]
    aggregate_score_db: float
    num_measurements: int
    num_distinct_configurations: int


@dataclass(frozen=True)
class CoverageRequest:
    """Mean used-SNR on a position grid centred on the RX, one config."""

    scenario: ScenarioSpec
    rows: int = 4
    cols: int = 4
    x_span_m: float = 2.0
    y_span_m: float = 2.0
    configuration: Optional[tuple[int, ...]] = None


@dataclass(frozen=True)
class CoverageResult:
    """Row-major per-point scores for the requested grid."""

    scores_db: tuple[float, ...]
    rows: int
    cols: int


Request = Union[
    EvaluateRequest,
    ActuateRequest,
    SweepRequest,
    SearchRequest,
    CoverageRequest,
    JointOptimizeRequest,
]

#: Ops the micro-batcher coalesces into one vectorized basis evaluation.
_COALESCED = (EvaluateRequest, ActuateRequest)

#: End-to-end latency histogram for each request type.
_LATENCY_BY_TYPE = {
    EvaluateRequest: _EVALUATE_LATENCY,
    ActuateRequest: _ACTUATE_LATENCY,
    SweepRequest: _SWEEP_LATENCY,
    SearchRequest: _SEARCH_LATENCY,
    JointOptimizeRequest: _JOINT_LATENCY,
    CoverageRequest: _COVERAGE_LATENCY,
}


class _RequestTrace:
    """In-flight stitching state of one traced request.

    ``context`` is the context children bind to (its ``parent_span_id``
    is the root ``serve.request`` span id, minted at admission);
    ``parent_id`` is whatever span the *caller* had open when it
    submitted (so nested traces — a client binding its own context —
    chain correctly); ``t_submit`` anchors the root span and the queue
    wait on the monotonic clock.

    A request that falls outside the trace sample carries the
    *latency-only* form (``context is None``): ``t_submit`` still feeds
    the per-type latency histogram at completion, but no spans are
    minted or emitted for it anywhere on the path.
    """

    __slots__ = ("context", "root_id", "parent_id", "t_submit")

    def __init__(
        self,
        context: Optional[RequestContext],
        root_id: str,
        parent_id: Optional[str],
        t_submit: float,
    ) -> None:
        self.context = context
        self.root_id = root_id
        self.parent_id = parent_id
        self.t_submit = t_submit


@dataclass
class _Shard:
    """Per-scenario batching state: queued requests + their flusher."""

    pending: list = field(default_factory=list)
    flusher: Optional[asyncio.Task] = None


class EnvironmentService:
    """The programmable-environment service (in-process, asyncio).

    Use as an async context manager, or call :meth:`close` explicitly so
    queued requests drain::

        async with EnvironmentService(ServiceConfig()) as service:
            client = ServiceClient(service)
            result = await client.actuate(spec, (0, 1, 2))
    """

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self._sessions: "OrderedDict[ScenarioSpec, ScenarioSession]" = OrderedDict()
        self._shards: dict[ScenarioSpec, _Shard] = {}
        self._executions: set[asyncio.Task] = set()
        self._pending_total = 0
        self._closed = False
        self.session_hits = 0
        self.session_misses = 0
        self.session_evictions = 0
        self.trace_store = RequestTraceStore(capacity=config.trace_capacity)
        self._trace_counter = 0
        global_tracer().add_sink(self.trace_store.sink)
        self._telemetry_task: Optional[asyncio.Task] = None
        self._streamer: Optional[TelemetryStreamer] = None

    # -- lifecycle ------------------------------------------------------

    async def __aenter__(self) -> "EnvironmentService":
        self._ensure_telemetry()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop admitting requests, flush queues, await running batches."""
        self._closed = True
        for spec in list(self._shards):
            self._flush(spec)
        while self._executions:
            await asyncio.gather(*list(self._executions), return_exceptions=True)
        global_tracer().remove_sink(self.trace_store.sink)
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
            self._telemetry_task = None
        if self._streamer is not None:
            # One final sample so the stream's last line reflects the
            # fully drained service.
            self._streamer.write_sample()
            self._streamer.close()
            self._streamer = None

    # -- telemetry ------------------------------------------------------

    def _ensure_telemetry(self) -> None:
        if (
            self.config.telemetry_path is None
            or self._telemetry_task is not None
            or self._closed
        ):
            return
        self._streamer = TelemetryStreamer(self.config.telemetry_path)
        self._telemetry_task = asyncio.get_running_loop().create_task(
            self._telemetry_loop()
        )

    async def _telemetry_loop(self) -> None:
        assert self._streamer is not None
        while True:
            self._streamer.write_sample()
            await asyncio.sleep(self.config.telemetry_interval_s)

    # -- request traces -------------------------------------------------

    def request_traces(self) -> Dict[str, List[SpanRecord]]:
        """Stitched (parent-before-child) timelines per retained request."""
        return {
            request_id: stitch_timeline(records)
            for request_id, records in self.trace_store.traces().items()
        }

    def drain_request_traces(self) -> Dict[str, Tuple[SpanRecord, ...]]:
        """Return and clear the retained timelines (run-record handoff)."""
        return self.trace_store.drain()

    # -- admission + batching -------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet flushed into a batch."""
        return self._pending_total

    async def submit(self, request: Request):
        """Admit one request; resolve with its result (or raise).

        Raises :class:`ServiceOverloaded` synchronously when
        ``max_pending`` requests are already queued, and
        :class:`ServiceClosed` after :meth:`close`.

        When observability is enabled, every request feeds the per-type
        latency histograms, and sampled requests (every
        ``trace_sample``-th, plus every request submitted under a bound
        :func:`repro.obs.context.current_context` such as
        ``ServiceClient.bind``) are traced end to end: a root
        ``serve.request`` span brackets admission to reply, with
        ``serve.queue``/``serve.batch_member`` children (and worker-side
        spans for pool-routed work) stitched under it.  Tracing never
        changes results — it reads clocks, not random streams.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        if self._pending_total >= self.config.max_pending:
            _REJECTIONS.inc()
            raise ServiceOverloaded(
                f"{self._pending_total} requests pending "
                f"(max_pending={self.config.max_pending})"
            )
        _REQUESTS.inc()
        self._ensure_telemetry()
        trace: Optional[_RequestTrace] = None
        if enabled():
            caller = current_context()
            if caller is not None or self._sample_next():
                if caller is None:
                    caller = RequestContext(request_id=new_request_id())
                root_id = new_span_id()
                trace = _RequestTrace(
                    context=RequestContext(caller.request_id, root_id),
                    root_id=root_id,
                    parent_id=caller.parent_span_id or None,
                    t_submit=monotonic_s(),
                )
            else:
                trace = _RequestTrace(None, "", None, monotonic_s())
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        shard = self._shards.setdefault(request.scenario, _Shard())
        shard.pending.append((request, future, trace))
        self._pending_total += 1
        _PENDING.set(self._pending_total)
        if len(shard.pending) >= self.config.max_batch:
            self._flush(request.scenario)
        elif shard.flusher is None:
            shard.flusher = loop.create_task(self._flush_later(request.scenario))
        if trace is None:
            return await future
        try:
            result = await future
        except BaseException:
            # Failed or cancelled: close the trace, drop the latency
            # sample (histograms measure completions only).
            self._finish_request(request, trace, ok=False)
            raise
        self._finish_request(request, trace, ok=True)
        return result

    def _sample_next(self) -> bool:
        """Counter-based trace sampling: no entropy, first request in."""
        n = self.config.trace_sample
        if n <= 0:
            return False
        sampled = self._trace_counter % n == 0
        self._trace_counter += 1
        return sampled

    def _finish_request(
        self, request: Request, trace: _RequestTrace, ok: bool
    ) -> None:
        """Close a traced request: root span + per-type latency sample."""
        t_end = monotonic_s()
        if trace.context is not None:
            emit_request_span(
                _SPAN_REQUEST,
                RequestContext(
                    request_id=trace.context.request_id,
                    parent_span_id=trace.parent_id or "",
                ),
                trace.t_submit,
                t_end,
                span_id=trace.root_id,
            )
        if ok:
            histogram = _LATENCY_BY_TYPE.get(type(request))
            if histogram is not None:
                histogram.observe(t_end - trace.t_submit)

    async def _flush_later(self, spec: ScenarioSpec) -> None:
        # With a zero window this still yields to the loop once, so every
        # submit() of the current scheduling round joins the batch.
        await asyncio.sleep(self.config.batch_window_s)
        shard = self._shards.get(spec)
        if shard is not None:
            shard.flusher = None
        self._flush(spec)

    def _flush(self, spec: ScenarioSpec) -> None:
        shard = self._shards.get(spec)
        if shard is None:
            return
        if shard.flusher is not None:
            shard.flusher.cancel()
            shard.flusher = None
        if not shard.pending:
            return
        batch, shard.pending = shard.pending, []
        self._pending_total -= len(batch)
        _PENDING.set(self._pending_total)
        _BATCHES.inc()
        _BATCHED_REQUESTS.inc(len(batch))
        traced = [
            trace
            for _, _, trace in batch
            if trace is not None and trace.context is not None
        ]
        if traced:
            # Queue wait spans: stamped at submit, closed here at flush —
            # the two ends live in different call frames, so the span is
            # emitted from explicit timestamps rather than bracketed.
            t_flush = monotonic_s()
            for trace in traced:
                emit_request_span(
                    _SPAN_QUEUE, trace.context, trace.t_submit, t_flush
                )
        task = asyncio.get_running_loop().create_task(
            self._execute_batch(spec, batch)
        )
        self._executions.add(task)
        task.add_done_callback(self._executions.discard)

    # -- sessions -------------------------------------------------------

    @property
    def sessions(self) -> int:
        """Scenario sessions currently hot."""
        return len(self._sessions)

    def _session(self, spec: ScenarioSpec) -> ScenarioSession:
        session = self._sessions.get(spec)
        if session is not None:
            self._sessions.move_to_end(spec)
            self.session_hits += 1
            _SESSION_HITS.inc()
            return session
        self.session_misses += 1
        _SESSION_MISSES.inc()
        with global_tracer().span(_SPAN_SESSION_BUILD):
            session = build_session(spec)
        self._sessions[spec] = session
        while len(self._sessions) > self.config.session_capacity:
            self._sessions.popitem(last=False)
            self.session_evictions += 1
            _SESSION_EVICTIONS.inc()
        _SESSIONS.set(len(self._sessions))
        return session

    # -- execution ------------------------------------------------------

    async def _execute_batch(self, spec: ScenarioSpec, batch: list) -> None:
        traced = [
            trace
            for _, _, trace in batch
            if trace is not None and trace.context is not None
        ]
        batch_span_id = new_span_id() if traced else ""
        t_batch = monotonic_s() if traced else 0.0
        try:
            with global_tracer().span(_SPAN_BATCH):
                try:
                    session = self._session(spec)
                except Exception as error:  # scene build failed: fail the batch
                    for _, future, _ in batch:
                        self._reject_future(future, error)
                    return
                self._run_coalesced(session, batch)
                for request, future, trace in batch:
                    if future.done() or isinstance(request, _COALESCED):
                        continue
                    try:
                        result = await self._run_single(
                            session, request, trace, batch_span_id
                        )
                    except Exception as error:
                        self._reject_future(future, error)
                    else:
                        if not future.cancelled():
                            future.set_result(result)
        finally:
            if traced:
                # One shared batch span id, one record per member request:
                # each request's timeline shows the same physical flush,
                # and worker spans hang off it via ``batch_span_id``.
                t_end = monotonic_s()
                for trace in traced:
                    emit_request_span(
                        _SPAN_BATCH_MEMBER,
                        trace.context,
                        t_batch,
                        t_end,
                        span_id=batch_span_id,
                    )

    @staticmethod
    def _reject_future(future: asyncio.Future, error: Exception) -> None:
        _ERRORS.inc()
        if not future.cancelled():
            future.set_exception(error)

    def _run_coalesced(self, session: ScenarioSession, batch: list) -> None:
        """One vectorized evaluation for every evaluate/actuate in the batch.

        Each request's rows are validated individually first, so a
        malformed configuration fails only its own future; the surviving
        rows share a single ``basis.evaluate`` + SNR map, then split back
        per request.  Row results are independent of batch composition
        (per-row gather, elementwise SNR), so responses are bit-identical
        to serial issue.
        """
        blocks: list[np.ndarray] = []
        spans: list[tuple[Request, asyncio.Future, int, int]] = []
        total = 0
        for request, future, _ in batch:
            if not isinstance(request, _COALESCED):
                continue
            if isinstance(request, EvaluateRequest):
                configurations = request.configurations
            else:
                configurations = (request.configuration,)
            try:
                if len(configurations) == 0:
                    raise ValueError("evaluate request carries no configurations")
                rows = session.validate_rows(configurations)
            except Exception as error:
                self._reject_future(future, error)
                continue
            spans.append((request, future, total, rows.shape[0]))
            blocks.append(rows)
            total += rows.shape[0]
        if not blocks:
            return
        snr = session.snr_rows(np.concatenate(blocks, axis=0))
        means = session.mean_used_snr(snr)
        for request, future, start, count in spans:
            if future.cancelled():
                continue
            if isinstance(request, EvaluateRequest):
                scores = tuple(float(x) for x in means[start : start + count])
                future.set_result(EvaluateResult(scores_db=scores))
            else:
                future.set_result(
                    ActuateResult(
                        snr_db=tuple(float(x) for x in snr[start]),
                        mean_used_snr_db=float(means[start]),
                    )
                )

    async def _run_single(
        self,
        session: ScenarioSession,
        request: Request,
        trace: Optional[_RequestTrace] = None,
        batch_span_id: str = "",
    ):
        if isinstance(request, SweepRequest):
            return self._run_sweep(session, request)
        if isinstance(request, SearchRequest):
            return await self._run_search(session, request, trace, batch_span_id)
        if isinstance(request, CoverageRequest):
            return self._run_coverage(session, request)
        if isinstance(request, JointOptimizeRequest):
            return await self._run_joint(session, request, trace, batch_span_id)
        raise TypeError(f"unknown request type {type(request).__name__}")

    @staticmethod
    def _worker_wire(
        trace: Optional[_RequestTrace], batch_span_id: str
    ) -> Optional[tuple]:
        """The context tuple shipped to (or used inline by) a task call.

        The worker's span parents onto the shared batch span, so a
        pool-routed search shows up in the timeline exactly where the
        flush that dispatched it does.
        """
        if trace is None or trace.context is None or not enabled():
            return None
        parent = batch_span_id or trace.context.parent_span_id
        return RequestContext(trace.context.request_id, parent).to_wire()

    def _ingest_worker_records(self, records: tuple) -> None:
        """Merge span dicts a pool worker shipped back into the store.

        Only pool results are ingested — inline ``traced_call`` runs emit
        straight into this process's tracer, whose sink already feeds the
        store; adding the returned copies too would duplicate them.
        """
        self.trace_store.extend(
            SpanRecord.from_dict(record) for record in records
        )

    def _run_sweep(
        self, session: ScenarioSession, request: SweepRequest
    ) -> SweepResult:
        if request.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        rng = (
            None
            if request.seed is None
            else np.random.default_rng(request.seed)
        )
        snr = sweep_basis_snr(
            session.basis,
            request.repetitions,
            rng,
            tx_power_dbm=session.tx_power_dbm,
            noise_figure_db=session.noise_figure_db,
            drift_phase_rad=request.drift_phase_rad,
            drift_amplitude=request.drift_amplitude,
        )
        scores = snr[:, :, session.mask].mean(axis=(0, 2))
        return SweepResult(
            scores_db=tuple(float(x) for x in scores),
            best_index=int(np.argmax(scores)),
        )

    async def _run_search(
        self,
        session: ScenarioSession,
        request: SearchRequest,
        trace: Optional[_RequestTrace] = None,
        batch_span_id: str = "",
    ) -> SearchResult:
        """Run a searcher, on the shared process pool when configured.

        The searcher is seeded from the request, so the answer is the
        same whether it runs inline or on a worker; the pool only buys
        the event loop its latency back.  ``search_basis`` builds a fresh
        evaluator per call against the immutable shared basis, so
        concurrent searches on one session never interfere.
        """
        jobs = resolve_jobs(self.config.search_jobs)
        pool = shared_pool(jobs)
        wire = self._worker_wire(trace, batch_span_id)
        args = (
            session.basis,
            request.searcher,
            request.seed,
            session.tx_power_dbm,
            session.noise_figure_db,
            session.mask,
        )
        if pool is None:
            (best, score, evaluations), _ = traced_call(
                wire, work.search_task, *args
            )
        else:
            (best, score, evaluations), records = (
                await asyncio.get_running_loop().run_in_executor(
                    pool, traced_call, wire, work.search_task, *args
                )
            )
            self._ingest_worker_records(records)
        return SearchResult(
            best_configuration=best,
            best_score_db=score,
            num_evaluations=evaluations,
        )

    async def _run_joint(
        self,
        session: ScenarioSession,
        request: JointOptimizeRequest,
        trace: Optional[_RequestTrace] = None,
        batch_span_id: str = "",
    ) -> JointOptimizeResult:
        """Run one multi-link strategy, on the shared pool when configured.

        Per-link bases are traced in the event-loop process through the
        batched ``bases_for_points`` path (value-cached process-wide, so
        repeated joint requests re-trace nothing), then shipped with the
        strategy parameters to the picklable ``work.joint_task``.  The
        task is a pure function of its arguments, so responses are
        bit-identical to a direct ``optimize_joint`` call over the same
        bases regardless of batch window or pool routing.
        """
        if not request.links:
            raise ValueError("joint request carries no links")
        names = tuple(link.name for link in request.links)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate link names in joint request: {names}")
        setup = session.setup
        rx0 = setup.rx_device.position
        points = [
            Point(rx0.x + link.dx_m, rx0.y + link.dy_m)
            for link in request.links
        ]
        bases = setup.testbed.bases_for_points(
            setup.tx_device, points, setup.rx_device.chains[0].antenna
        )
        args = (
            tuple(bases),
            names,
            tuple(link.weight for link in request.links),
            request.strategy,
            request.searcher,
            request.seed,
            request.aggregate,
            request.tolerance,
            session.tx_power_dbm,
            session.noise_figure_db,
            session.mask,
        )
        jobs = resolve_jobs(self.config.search_jobs)
        pool = shared_pool(jobs)
        wire = self._worker_wire(trace, batch_span_id)
        if pool is None:
            outcome, _ = traced_call(wire, work.joint_task, *args)
        else:
            outcome, records = await asyncio.get_running_loop().run_in_executor(
                pool, traced_call, wire, work.joint_task, *args
            )
            self._ingest_worker_records(records)
        strategy, configurations, scores, aggregate, measurements, distinct = outcome
        return JointOptimizeResult(
            strategy=strategy,
            configurations=configurations,
            scores_db=scores,
            aggregate_score_db=aggregate,
            num_measurements=measurements,
            num_distinct_configurations=distinct,
        )

    def _run_coverage(
        self, session: ScenarioSession, request: CoverageRequest
    ) -> CoverageResult:
        if request.rows <= 0 or request.cols <= 0:
            raise ValueError("coverage grid must have positive rows and cols")
        configuration = request.configuration
        if configuration is None:
            configuration = tuple([0] * session.basis.space.num_elements)
        session.validate_configuration(configuration)
        scores = work.coverage_task(
            session,
            request.rows,
            request.cols,
            request.x_span_m,
            request.y_span_m,
            configuration,
        )
        return CoverageResult(
            scores_db=tuple(float(x) for x in scores),
            rows=request.rows,
            cols=request.cols,
        )


class ServiceClient:
    """Typed async facade over :meth:`EnvironmentService.submit`.

    Calls made inside a :meth:`bind` block share one request context, so
    their service-side spans stitch under the caller-chosen request id::

        with client.bind("warmup-7"):
            await client.actuate(spec, (0, 1, 2))

    Unbound calls are traced too — :meth:`EnvironmentService.submit`
    mints a fresh context per request.
    """

    def __init__(self, service: EnvironmentService) -> None:
        self._service = service

    @staticmethod
    def bind(request_id: str):
        """Bind a request context for client calls within the block."""
        return bind_context(RequestContext(request_id=str(request_id)))

    async def evaluate(self, scenario: ScenarioSpec, configurations) -> EvaluateResult:
        return await self._service.submit(
            EvaluateRequest(
                scenario=scenario,
                configurations=tuple(
                    tuple(int(s) for s in row) for row in configurations
                ),
            )
        )

    async def actuate(self, scenario: ScenarioSpec, configuration) -> ActuateResult:
        return await self._service.submit(
            ActuateRequest(
                scenario=scenario,
                configuration=tuple(int(s) for s in configuration),
            )
        )

    async def sweep(
        self,
        scenario: ScenarioSpec,
        repetitions: int = 1,
        seed: Optional[int] = None,
        drift_phase_rad: float = 0.0,
        drift_amplitude: float = 0.0,
    ) -> SweepResult:
        return await self._service.submit(
            SweepRequest(
                scenario=scenario,
                repetitions=repetitions,
                seed=seed,
                drift_phase_rad=drift_phase_rad,
                drift_amplitude=drift_amplitude,
            )
        )

    async def search(
        self, scenario: ScenarioSpec, searcher: str = "greedy", seed: int = 0
    ) -> SearchResult:
        return await self._service.submit(
            SearchRequest(scenario=scenario, searcher=searcher, seed=seed)
        )

    async def joint_optimize(
        self,
        scenario: ScenarioSpec,
        links,
        strategy: str = "joint",
        searcher: str = "greedy",
        seed: int = 0,
        aggregate: str = "mean",
        tolerance: float = 1.0,
    ) -> JointOptimizeResult:
        return await self._service.submit(
            JointOptimizeRequest(
                scenario=scenario,
                links=tuple(links),
                strategy=strategy,
                searcher=searcher,
                seed=seed,
                aggregate=aggregate,
                tolerance=tolerance,
            )
        )

    async def coverage(
        self,
        scenario: ScenarioSpec,
        rows: int = 4,
        cols: int = 4,
        x_span_m: float = 2.0,
        y_span_m: float = 2.0,
        configuration: Optional[tuple[int, ...]] = None,
    ) -> CoverageResult:
        return await self._service.submit(
            CoverageRequest(
                scenario=scenario,
                rows=rows,
                cols=cols,
                x_span_m=x_span_m,
                y_span_m=y_span_m,
                configuration=configuration,
            )
        )
