"""Module-level work functions behind the service's request handlers.

These are plain picklable functions of picklable values, so the service
can run them inline (serial configuration) or ship them to the
persistent shared process pools of :mod:`repro.experiments.runner`
unchanged — mirroring how the parallel experiment runner ships
parent-traced bases to workers.  Either route computes the identical
answer: everything is a pure function of the arguments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.basis import ChannelBasis
from ..core.joint import (
    BasisLink,
    optimize_hybrid,
    optimize_joint,
    optimize_per_link,
)
from ..core.objectives import MeanSnrObjective, joint_aggregate
from ..em.channel import snr_db_from_cfr
from ..em.geometry import Point
from ..experiments.large_array import make_searcher

__all__ = ["coverage_task", "joint_task", "search_task"]


def search_task(
    basis: ChannelBasis,
    searcher_name: str,
    seed: int,
    tx_power_dbm: float,
    noise_figure_db: float,
    mask: np.ndarray,
) -> tuple[tuple[int, ...], float, int]:
    """Run one named searcher against a traced basis.

    Returns ``(best_configuration, best_score_db, num_evaluations)`` as
    plain values.  Seeded construction via
    :func:`~repro.experiments.large_array.make_searcher` makes the result
    a pure function of the arguments — identical inline or on a worker.
    """
    searcher = make_searcher(searcher_name, seed)
    result = searcher.search_basis(
        basis,
        MeanSnrObjective(),
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=noise_figure_db,
        mask=mask,
    )
    return (
        tuple(int(s) for s in result.best.indices),
        float(result.best_score),
        int(result.num_evaluations),
    )


def joint_task(
    bases: Sequence[ChannelBasis],
    names: Sequence[str],
    weights: Sequence[float],
    strategy: str,
    searcher_name: str,
    seed: int,
    aggregate_name: str,
    tolerance: float,
    tx_power_dbm: float,
    noise_figure_db: float,
    mask: Optional[np.ndarray],
) -> tuple[str, tuple, tuple, float, int, int]:
    """Run one multi-link strategy over per-link traced bases.

    Every link shares the array (one configuration space), so the links
    become :class:`~repro.core.joint.BasisLink`\\ s and the strategy runs
    delta-powered whenever the named searcher supports it.  Returns plain
    picklable values, in ``names`` order:
    ``(strategy, configurations, scores_db, aggregate_score_db,
    num_measurements, num_distinct_configurations)`` — a pure function of
    the arguments, identical inline or on a worker.
    """
    searcher = make_searcher(searcher_name, seed)
    aggregate = joint_aggregate(aggregate_name)
    links = [
        BasisLink(
            name=name,
            evaluator=basis.evaluator(
                MeanSnrObjective(),
                tx_power_dbm=tx_power_dbm,
                noise_figure_db=noise_figure_db,
                mask=mask,
            ),
            weight=weight,
        )
        for name, basis, weight in zip(names, bases, weights)
    ]
    if strategy == "joint":
        result = optimize_joint(links, searcher=searcher, aggregate=aggregate)
    elif strategy == "per-link":
        result = optimize_per_link(links, searcher=searcher)
    elif strategy == "hybrid":
        result = optimize_hybrid(links, searcher=searcher, tolerance=tolerance)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected joint, per-link or hybrid"
        )
    return (
        result.strategy,
        tuple(
            tuple(int(s) for s in result.assignments[name].indices)
            for name in names
        ),
        tuple(float(result.per_link_scores[name]) for name in names),
        float(result.aggregate_score(links, aggregate=aggregate)),
        int(result.num_measurements),
        int(result.num_distinct_configurations),
    )


def coverage_task(
    session,
    rows: int,
    cols: int,
    x_span_m: float,
    y_span_m: float,
    configuration: tuple[int, ...],
) -> list[float]:
    """Mean used-SNR at one configuration over an RX-centred grid.

    Row-major point order (matching the coverage experiment); the whole
    grid's geometry goes through one batched trace via
    ``Testbed.bases_for_points``, which is itself value-cached
    process-wide, so repeated coverage requests re-trace nothing.
    """
    setup = session.setup
    rx0 = setup.rx_device.position
    xs = np.linspace(rx0.x - x_span_m / 2, rx0.x + x_span_m / 2, cols)
    ys = np.linspace(rx0.y - y_span_m / 2, rx0.y + y_span_m / 2, rows)
    points = [Point(float(x), float(y)) for y in ys for x in xs]
    bases = setup.testbed.bases_for_points(
        setup.tx_device, points, setup.rx_device.chains[0].antenna
    )
    indices = np.array([configuration], dtype=np.int64)
    scores = []
    for point_basis in bases:
        snr = snr_db_from_cfr(
            point_basis.evaluate(indices),
            point_basis.num_subcarriers,
            point_basis.bandwidth_hz,
            tx_power_dbm=setup.tx_device.tx_power_dbm,
            noise_figure_db=setup.rx_device.noise_figure_db,
        )
        scores.append(float(snr[0, session.mask].mean()))
    return scores
