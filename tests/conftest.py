"""Shared fixtures for the PRESS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PressArray, omni_element
from repro.em import (
    Channel,
    Point,
    SignalPath,
    blocker_between,
    shoebox_scene,
)
from repro.em import trace_cache as trace_cache_module


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Give every test a default-sized, empty process-wide trace cache.

    ``global_trace_cache()`` is process-wide state: without this seam a
    test that traces a scene warms the cache (and its hit/miss counters)
    for every later test in the same process.  Resetting before and after
    keeps tests order-independent; tests that want a custom budget call
    ``trace_cache.configure(...)`` themselves and are re-defaulted here.
    """
    trace_cache_module.reset()
    yield
    trace_cache_module.reset()


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def simple_scene():
    """An empty 8 x 6 m drywall room."""
    return shoebox_scene(8.0, 6.0)


@pytest.fixture
def nlos_scene(rng):
    """A room with scatterers and a blocked 4 m link (tx at (2,3), rx at (6,3))."""
    scene = shoebox_scene(8.0, 6.0, num_scatterers=4, rng=rng)
    return scene.with_obstacles(blocker_between(Point(2, 3), Point(6, 3)))


@pytest.fixture
def two_path_channel() -> Channel:
    """A two-path channel with a null inside the band."""
    paths = [
        SignalPath(gain=1e-3 + 0j, delay_s=20e-9),
        SignalPath(gain=0.9e-3 * np.exp(1j * 2.4), delay_s=120e-9),
    ]
    return Channel(paths)


@pytest.fixture
def small_array():
    """A 2-element PRESS array (SP4T states) near the origin."""
    return PressArray.from_elements(
        [
            omni_element(Point(3.0, 4.5), name="e0"),
            omni_element(Point(5.0, 4.5), name="e1"),
        ]
    )
