"""Tests for repro.analysis (stats, nulls, metrics, reporting)."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    fraction_of_pairs_with_change,
    largest_single_subcarrier_gap,
    min_snr_changes,
    min_snrs,
)
from repro.analysis.nulls import (
    NULL_THRESHOLD_DB,
    has_null,
    most_significant_null,
    null_depth_db,
    null_movements,
)
from repro.analysis.reporting import ReportTable, format_table
from repro.analysis.stats import EmpiricalDistribution, ccdf, cdf


class TestEmpiricalDistribution:
    def test_cdf_values(self):
        dist = EmpiricalDistribution.from_samples(np.array([1.0, 2.0, 3.0, 4.0]))
        assert dist.cdf_at(0.5) == 0.0
        assert dist.cdf_at(2.0) == 0.5
        assert dist.cdf_at(10.0) == 1.0

    def test_ccdf_complements_cdf(self):
        dist = EmpiricalDistribution.from_samples(np.arange(10.0))
        for x in (-1.0, 3.0, 9.5):
            assert dist.cdf_at(x) + dist.ccdf_at(x) == pytest.approx(1.0)

    def test_quantiles(self):
        dist = EmpiricalDistribution.from_samples(np.arange(101.0))
        assert dist.median() == pytest.approx(50.0)
        assert dist.quantile(0.9) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_curve_monotone(self):
        dist = EmpiricalDistribution.from_samples(np.random.default_rng(0).normal(size=50))
        x, y = dist.curve()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) > 0)
        assert y[-1] == pytest.approx(1.0)

    def test_non_finite_filtered(self):
        dist = EmpiricalDistribution.from_samples(np.array([1.0, np.inf, np.nan, 2.0]))
        assert dist.num_samples == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_samples(np.array([np.nan]))

    def test_helper_functions(self):
        samples = np.arange(4.0)
        assert np.allclose(cdf(samples, np.array([1.0])), [0.5])
        assert np.allclose(ccdf(samples, np.array([1.0])), [0.5])


class TestNulls:
    def test_most_significant_null_is_argmin(self):
        snr = np.array([30.0, 10.0, 25.0])
        assert most_significant_null(snr) == 1

    def test_null_depth(self):
        snr = np.array([30.0, 30.0, 30.0, 18.0])
        assert null_depth_db(snr) == pytest.approx(12.0)

    def test_has_null_threshold(self):
        flat = np.full(52, 30.0)
        assert not has_null(flat)
        dipped = flat.copy()
        dipped[10] = 30.0 - NULL_THRESHOLD_DB - 0.1
        assert has_null(dipped)

    def test_null_movements_pairs(self):
        # Three configs with nulls at 5, 5 and 14; one config without.
        base = np.full(52, 30.0)
        profiles = []
        for loc in (5, 5, 14):
            p = base.copy()
            p[loc] = 10.0
            profiles.append(p)
        profiles.append(base)  # no null
        movements = null_movements(np.array(profiles))
        assert movements.size == 9  # 3 eligible configs -> 3x3 ordered pairs
        assert movements.max() == 9
        assert np.sum(movements == 0) == 5  # diagonal + the (5,5) pair both ways

    def test_no_nulls_empty(self):
        movements = null_movements(np.full((4, 52), 30.0))
        assert movements.size == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            null_movements(np.zeros(52))


class TestMetrics:
    def test_largest_gap_identifies_pair(self):
        snr = np.full((3, 10), 30.0)
        snr[1, 4] = 5.0  # config 1 has a null at subcarrier 4
        snr[2, 4] = 35.0
        gap = largest_single_subcarrier_gap(snr)
        assert gap.subcarrier == 4
        assert gap.config_low == 1
        assert gap.config_high == 2
        assert gap.gap_db == pytest.approx(30.0)

    def test_min_snrs(self):
        snr = np.array([[10.0, 20.0], [5.0, 30.0]])
        assert np.allclose(min_snrs(snr), [10.0, 5.0])

    def test_min_snr_changes_pairs(self):
        snr = np.array([[10.0, 20.0], [5.0, 30.0]])
        changes = min_snr_changes(snr)
        assert changes.size == 4
        assert changes.max() == pytest.approx(5.0)

    def test_fraction_of_pairs(self):
        a = np.full(10, 30.0)
        b = a.copy()
        b[3] = 15.0  # 15 dB change on one subcarrier
        frac = fraction_of_pairs_with_change(np.array([a, b]), change_db=10.0)
        assert frac == 1.0
        frac_small = fraction_of_pairs_with_change(np.array([a, a]), change_db=10.0)
        assert frac_small == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            min_snrs(np.zeros(5))
        with pytest.raises(ValueError):
            fraction_of_pairs_with_change(np.zeros((1, 5)))


class TestReporting:
    def test_table_rendering(self):
        table = ReportTable(title="Fig X")
        table.add("metric-a", "26 dB", "24.1 dB", True)
        table.add("metric-b", "9 sc", "11 sc", True)
        rendered = table.render()
        assert "Fig X" in rendered
        assert "metric-a" in rendered
        assert "yes" in rendered

    def test_all_hold(self):
        table = ReportTable(title="t")
        table.add("a", "1", "1", True)
        assert table.all_hold()
        table.add("b", "1", "9", False)
        assert not table.all_hold()

    def test_format_table_alignment(self):
        rows = [("col", "x"), ("longer-cell", "y")]
        text = format_table(rows)
        lines = text.split("\n")
        assert lines[0].index("x") == lines[1].index("y")

    def test_format_empty(self):
        assert format_table([]) == ""
