"""Call-graph builder regression suite.

Exercises :mod:`repro.analysis.graph` on small in-memory projects:
module naming, import absolutization, ``__init__.py`` re-export chasing,
``self.method()`` dispatch through base classes, recursion cycles,
decorated and nested functions, and both propagation closures from
:mod:`repro.analysis.propagate`.
"""

from repro.analysis.graph import ProjectContext, module_name_for
from repro.analysis.linter import LintContext
from repro.analysis.propagate import (
    Fact,
    propagate_callers,
    propagate_param_flow,
)


def project(*files):
    """Build a ProjectContext from ``(path, source)`` pairs."""
    return ProjectContext([LintContext(path, source) for path, source in files])


def edge_pairs(ctx):
    return {
        (site.caller, site.callee)
        for sites in ctx.graph.sites.values()
        for site in sites
        if site.callee is not None
    }


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def test_module_name_from_src_anchor():
    assert module_name_for("src/repro/serve/service.py") == "repro.serve.service"
    assert module_name_for("src/repro/serve/__init__.py") == "repro.serve"


def test_module_name_for_loose_file_is_stem():
    assert module_name_for("scratch/tool.py") == "tool"


def test_module_name_from_package_tree(tmp_path):
    package = tmp_path / "pkg" / "sub"
    package.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (package / "__init__.py").write_text("")
    module = package / "leaf.py"
    module.write_text("x = 1\n")
    assert module_name_for(str(module)) == "pkg.sub.leaf"


# ----------------------------------------------------------------------
# Index: functions, methods, nesting
# ----------------------------------------------------------------------
def test_index_qualnames_cover_methods_and_nested_functions():
    ctx = project(
        (
            "src/repro/em/mod.py",
            "class Solver:\n"
            "    def solve(self):\n"
            "        def refine(x):\n"
            "            return x\n"
            "        return refine(1)\n"
            "async def drive():\n"
            "    return 0\n",
        )
    )
    functions = ctx.index.functions
    assert "repro.em.mod.Solver.solve" in functions
    nested = functions["repro.em.mod.Solver.solve.<locals>.refine"]
    assert nested.is_nested
    assert functions["repro.em.mod.drive"].is_async
    assert functions["repro.em.mod.Solver.solve"].is_method
    # The nested call resolves through the <locals> scope chain.
    assert (
        "repro.em.mod.Solver.solve",
        "repro.em.mod.Solver.solve.<locals>.refine",
    ) in edge_pairs(ctx)


# ----------------------------------------------------------------------
# Imports and re-exports
# ----------------------------------------------------------------------
def test_cross_module_call_through_import_alias():
    ctx = project(
        (
            "src/repro/em/solver.py",
            "def kernel():\n    return 1\n",
        ),
        (
            "src/repro/em/driver.py",
            "from . import solver\n\ndef run():\n    return solver.kernel()\n",
        ),
    )
    assert ("repro.em.driver.run", "repro.em.solver.kernel") in edge_pairs(ctx)


def test_reexport_through_package_init_resolves_to_definition():
    ctx = project(
        (
            "src/repro/em/__init__.py",
            "from .solver import kernel\n",
        ),
        (
            "src/repro/em/solver.py",
            "def kernel():\n    return 1\n",
        ),
        (
            "src/repro/app.py",
            "from repro.em import kernel\n\ndef run():\n    return kernel()\n",
        ),
    )
    assert ("repro.app.run", "repro.em.solver.kernel") in edge_pairs(ctx)


def test_circular_reexports_do_not_hang():
    ctx = project(
        ("src/repro/a.py", "from .b import thing\n"),
        ("src/repro/b.py", "from .a import thing\n"),
        (
            "src/repro/c.py",
            "from .a import thing\n\ndef use():\n    return thing()\n",
        ),
    )
    # The import cycle never bottoms out at a definition: no edge, no hang.
    assert ("repro.c.use", "repro.a.thing") not in edge_pairs(ctx)
    assert all(callee != "repro.b.thing" for _, callee in edge_pairs(ctx))


# ----------------------------------------------------------------------
# Method dispatch
# ----------------------------------------------------------------------
def test_self_method_call_resolves_including_inherited():
    ctx = project(
        (
            "src/repro/em/shapes.py",
            "class Base:\n"
            "    def area(self):\n"
            "        return 0\n"
            "class Square(Base):\n"
            "    def report(self):\n"
            "        return self.area()\n",
        )
    )
    assert (
        "repro.em.shapes.Square.report",
        "repro.em.shapes.Base.area",
    ) in edge_pairs(ctx)


def test_instantiation_is_an_edge_to_init_including_inherited():
    ctx = project(
        (
            "src/repro/em/shapes.py",
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "class Square(Base):\n"
            "    pass\n"
            "def make():\n"
            "    return Square()\n",
        )
    )
    assert (
        "repro.em.shapes.make",
        "repro.em.shapes.Base.__init__",
    ) in edge_pairs(ctx)


# ----------------------------------------------------------------------
# Decorators and cycles
# ----------------------------------------------------------------------
def test_decorated_functions_keep_their_edges():
    ctx = project(
        (
            "src/repro/em/deco.py",
            "import functools\n"
            "import contextlib\n"
            "def helper():\n"
            "    return 1\n"
            "def wrap(fn):\n"
            "    @functools.wraps(fn)\n"
            "    def inner(*args, **kwargs):\n"
            "        return fn(*args, **kwargs)\n"
            "    return inner\n"
            "@wrap\n"
            "def work():\n"
            "    return helper()\n"
            "@contextlib.contextmanager\n"
            "def scope():\n"
            "    yield helper()\n"
            "def use():\n"
            "    with scope():\n"
            "        return work()\n",
        )
    )
    edges = edge_pairs(ctx)
    # Decorated bodies are indexed like any other; their calls resolve.
    assert ("repro.em.deco.work", "repro.em.deco.helper") in edges
    assert ("repro.em.deco.scope", "repro.em.deco.helper") in edges
    # Calling a decorated function still resolves to its definition.
    assert ("repro.em.deco.use", "repro.em.deco.scope") in edges
    assert ("repro.em.deco.use", "repro.em.deco.work") in edges
    # The closure inside wrap resolves through the <locals> chain.
    assert (
        "repro.em.deco.wrap",
        "repro.em.deco.wrap.<locals>.inner",
    ) not in edges  # wrap returns inner without calling it


def test_call_cycles_build_and_propagate_without_hanging():
    ctx = project(
        (
            "src/repro/em/cycle.py",
            "def ping(n):\n"
            "    return pong(n - 1) if n else 0\n"
            "def pong(n):\n"
            "    return ping(n - 1) if n else 1\n"
            "def entry():\n"
            "    return ping(3)\n",
        )
    )
    edges = edge_pairs(ctx)
    assert ("repro.em.cycle.ping", "repro.em.cycle.pong") in edges
    assert ("repro.em.cycle.pong", "repro.em.cycle.ping") in edges
    facts = propagate_callers(
        ctx.graph, {"repro.em.cycle.pong": "touches the detector"}
    )
    assert set(facts) == {
        "repro.em.cycle.ping",
        "repro.em.cycle.pong",
        "repro.em.cycle.entry",
    }


# ----------------------------------------------------------------------
# Propagation closures
# ----------------------------------------------------------------------
def test_propagate_callers_records_witness_chain():
    ctx = project(
        (
            "src/repro/em/chain.py",
            "def low():\n"
            "    return 0\n"
            "def mid():\n"
            "    return low()\n"
            "def top():\n"
            "    return mid()\n",
        )
    )
    facts = propagate_callers(ctx.graph, {"repro.em.chain.low": "blocks"})
    top = facts["repro.em.chain.top"]
    assert not top.direct
    assert top.via == ("repro.em.chain.mid", "repro.em.chain.low")
    assert "blocks" in top.chain()
    assert facts["repro.em.chain.low"].direct


def test_propagate_param_flow_requires_passing_own_param():
    ctx = project(
        (
            "src/repro/em/flow.py",
            "def sink(rng):\n"
            "    return 0\n"
            "def forwards(rng):\n"
            "    return sink(rng)\n"
            "def unrelated(rng):\n"
            "    return sink(None)\n",
        )
    )
    seeds = {"repro.em.flow.sink": "mints a stream"}

    def params_of(qualname):
        info = ctx.index.functions.get(qualname)
        return info.params if info is not None else ()

    facts = propagate_param_flow(ctx.graph, seeds, params_of)
    assert "repro.em.flow.forwards" in facts
    # Calling the sink without handing it one of your params is legal.
    assert "repro.em.flow.unrelated" not in facts


def test_fact_chain_formats_direct_and_indirect():
    assert Fact("boom").chain() == "boom"
    assert Fact("boom", via=("a", "b")).chain() == "via a -> b: boom"
