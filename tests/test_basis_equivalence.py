"""Fast path vs legacy: the channel basis must be numerically exact.

The basis sweep engine (``repro.core.basis``) exploits Γ-linearity —
``H(f; c) = H0(f) + sum_n E[n, c_n]`` — which is exact for passive
elements with no element–element rescattering, i.e. exactly the physics
the per-path route models.  These tests pin that equivalence: identical
seeds must give identical sweeps (drift and estimation noise included) to
within 1e-9, across LoS and NLoS scenes and across terminated and
reflective element states, and the vectorized exhaustive search must
return the same argmax as the measurement-backed one.
"""

import numpy as np
import pytest

from repro.core import (
    ArrayConfiguration,
    ExhaustiveSearch,
    MeanSnrObjective,
    exhaustive_argmax,
)
from repro.experiments import (
    StudyConfig,
    build_los_setup,
    build_mimo_setup,
    build_nlos_setup,
    used_subcarrier_mask,
)

ATOL = 1e-9


@pytest.mark.parametrize("builder", [build_nlos_setup, build_los_setup])
def test_sweep_modes_agree_with_drift_and_noise(builder):
    """Same seed, either mode: identical sweeps (drift + estimation noise)."""
    setup = builder(3)
    legacy = setup.testbed.sweep(
        setup.tx_device,
        setup.rx_device,
        repetitions=3,
        rng=np.random.default_rng(7),
        mode="legacy",
    )
    fast = setup.testbed.sweep(
        setup.tx_device,
        setup.rx_device,
        repetitions=3,
        rng=np.random.default_rng(7),
        mode="basis",
    )
    assert fast.configurations == legacy.configurations
    np.testing.assert_array_equal(fast.used_mask, legacy.used_mask)
    np.testing.assert_allclose(fast.snr_db, legacy.snr_db, rtol=0.0, atol=ATOL)


def test_sweep_modes_agree_noise_only():
    """Drift disabled, estimation noise on: streams still line up."""
    config = StudyConfig(drift_phase_rad=0.0, drift_amplitude=0.0)
    setup = build_nlos_setup(1, config)
    legacy = setup.testbed.sweep(
        setup.tx_device,
        setup.rx_device,
        repetitions=2,
        rng=np.random.default_rng(11),
        mode="legacy",
    )
    fast = setup.testbed.sweep(
        setup.tx_device,
        setup.rx_device,
        repetitions=2,
        rng=np.random.default_rng(11),
        mode="basis",
    )
    np.testing.assert_allclose(fast.snr_db, legacy.snr_db, rtol=0.0, atol=ATOL)


def test_sweep_modes_agree_exact():
    """No rng: both modes return the exact (deterministic) sweep."""
    setup = build_nlos_setup(6)
    legacy = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=2, mode="legacy"
    )
    fast = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=2, mode="basis"
    )
    np.testing.assert_allclose(fast.snr_db, legacy.snr_db, rtol=0.0, atol=ATOL)
    # Exact repetitions are identical by construction in both modes.
    np.testing.assert_array_equal(fast.snr_db[0], fast.snr_db[1])


def test_basis_cfr_matches_per_path_route():
    """Every configuration's CFR: basis == per-path, |dH| <= 1e-9.

    The default SP4T state set includes the absorptive load, so the loop
    exercises terminated elements (zero basis rows) as well as all three
    reflective stub settings.
    """
    setup = build_nlos_setup(5)
    testbed = setup.testbed
    states = setup.array.elements[0].states
    assert any(state.is_terminated for state in states)
    assert any(not state.is_terminated for state in states)
    basis = testbed.basis_for(setup.tx_device, setup.rx_device)
    configurations = tuple(setup.array.configuration_space().all_configurations())
    batch = basis.evaluate()
    assert batch.shape == (len(configurations), testbed.num_subcarriers)
    for index, configuration in enumerate(configurations):
        reference = testbed.channel(
            setup.tx_device, setup.rx_device, configuration
        ).cfr()
        np.testing.assert_allclose(
            basis.cfr(configuration), reference, rtol=0.0, atol=ATOL
        )
        np.testing.assert_allclose(batch[index], reference, rtol=0.0, atol=ATOL)


def test_basis_exhaustive_matches_legacy_exhaustive():
    """Vectorized argmax == measurement-backed ExhaustiveSearch argmax."""
    setup = build_nlos_setup(2)
    mask = used_subcarrier_mask()
    objective = MeanSnrObjective()

    def score(configuration):
        observation = setup.testbed.measure_csi(
            setup.tx_device, setup.rx_device, configuration
        )
        return float(objective(observation.snr_db[mask]))

    legacy = ExhaustiveSearch().search(setup.array.configuration_space(), score)
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    best, best_score = exhaustive_argmax(
        basis,
        objective,
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=mask,
    )
    assert best == legacy.best
    assert best_score == pytest.approx(legacy.best_score, abs=ATOL)

    searched = ExhaustiveSearch().search_basis(
        basis,
        objective,
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=mask,
    )
    assert searched.best == legacy.best
    assert searched.best_score == pytest.approx(legacy.best_score, abs=ATOL)


def test_mimo_modes_agree():
    """Per-chain-pair basis MIMO matrices match the re-traced ones."""
    setup = build_mimo_setup(0)
    configuration = ArrayConfiguration(tuple([1] * setup.array.num_elements))
    legacy = setup.testbed.mimo_matrices(
        setup.tx_device,
        setup.rx_device,
        configuration,
        rng=np.random.default_rng(13),
        estimation_error_std=0.05,
        mode="legacy",
    )
    fast = setup.testbed.mimo_matrices(
        setup.tx_device,
        setup.rx_device,
        configuration,
        rng=np.random.default_rng(13),
        estimation_error_std=0.05,
        mode="basis",
    )
    np.testing.assert_allclose(fast, legacy, rtol=0.0, atol=ATOL)


def test_used_mask_rename_and_validation():
    """`used_mask` replaces `used_only_mask`; the alias still works."""
    setup = build_nlos_setup(0)
    testbed = setup.testbed
    mask = np.zeros(testbed.num_subcarriers, dtype=bool)
    mask[1:11] = True
    via_new = testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=1, used_mask=mask
    )
    via_alias = testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=1, used_only_mask=mask
    )
    np.testing.assert_array_equal(via_new.used_mask, mask)
    np.testing.assert_array_equal(via_alias.used_mask, mask)
    with pytest.raises(ValueError, match="not both"):
        testbed.sweep(
            setup.tx_device,
            setup.rx_device,
            repetitions=1,
            used_mask=mask,
            used_only_mask=mask,
        )
    with pytest.raises(ValueError, match="used_mask"):
        testbed.sweep(
            setup.tx_device,
            setup.rx_device,
            repetitions=1,
            used_mask=np.ones(10, dtype=bool),
        )
    with pytest.raises(ValueError, match="mode"):
        testbed.sweep(setup.tx_device, setup.rx_device, repetitions=1, mode="warp")
