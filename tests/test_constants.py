"""Tests for repro.constants."""


import numpy as np
import pytest

from repro import constants


def test_wavelength_at_carrier():
    assert constants.WAVELENGTH_M == pytest.approx(0.12177, rel=1e-3)


def test_subcarrier_spacing_matches_80211():
    assert constants.SUBCARRIER_SPACING_HZ == pytest.approx(312.5e3)


def test_db_roundtrip():
    for value in (0.001, 1.0, 42.0, 1e6):
        assert constants.db_to_linear(constants.linear_to_db(value)) == pytest.approx(value)


def test_linear_to_db_clamps_zero():
    assert np.isfinite(constants.linear_to_db(0.0))


def test_amplitude_db_conversions():
    assert constants.amplitude_db_to_linear(20.0) == pytest.approx(10.0)
    assert constants.amplitude_linear_to_db(10.0) == pytest.approx(20.0)


def test_dbm_watts_roundtrip():
    assert constants.dbm_to_watts(30.0) == pytest.approx(1.0)
    assert constants.watts_to_dbm(1e-3) == pytest.approx(0.0)
    assert constants.watts_to_dbm(constants.dbm_to_watts(17.3)) == pytest.approx(17.3)


def test_thermal_noise_power_20mhz():
    # kTB over 20 MHz is about -101 dBm.
    noise = constants.thermal_noise_power_w(20e6)
    assert constants.watts_to_dbm(noise) == pytest.approx(-100.97, abs=0.2)


def test_thermal_noise_with_noise_figure():
    clean = constants.thermal_noise_power_w(1e6)
    noisy = constants.thermal_noise_power_w(1e6, noise_figure_db=7.0)
    assert noisy / clean == pytest.approx(constants.db_to_linear(7.0))


def test_thermal_noise_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        constants.thermal_noise_power_w(0.0)


def test_wavelength_function():
    assert constants.wavelength(constants.SPEED_OF_LIGHT) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        constants.wavelength(-1.0)
