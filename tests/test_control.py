"""Tests for repro.control (messages, links, protocol, latency)."""

import numpy as np
import pytest

from repro.control.latency import analyze_link, compare_links
from repro.control.links import (
    ControlLink,
    sub_ghz_ism_link,
    ultrasound_link,
    wifi_inband_link,
    wired_bus_link,
)
from repro.control.messages import (
    Ack,
    Beacon,
    ConfigureCommand,
    CsiReport,
    decode_message,
)
from repro.control.protocol import ControlPlane
from repro.core.configuration import ArrayConfiguration


class TestMessages:
    def test_configure_roundtrip(self):
        cmd = ConfigureCommand(sequence=7, element_ids=(0, 1, 2), states=(3, 0, 1))
        decoded = decode_message(cmd.encode())
        assert decoded == cmd

    def test_ack_roundtrip(self):
        ack = Ack(sequence=300, element_id=5)
        assert decode_message(ack.encode()) == ack

    def test_beacon_roundtrip(self):
        beacon = Beacon(element_id=9, battery_centivolts=287)
        assert decode_message(beacon.encode()) == beacon

    def test_csi_report_roundtrip(self):
        report = CsiReport.from_snr_db(link_id=2, snr_db=[12.3, -4.7, 31.0])
        decoded = decode_message(report.encode())
        assert decoded == report
        recovered = decoded.snr_db()
        assert recovered[0] == pytest.approx(12.5)  # half-dB quantisation
        assert recovered[1] == pytest.approx(-4.5)

    def test_csi_quantisation_saturates(self):
        report = CsiReport.from_snr_db(link_id=0, snr_db=[100.0, -100.0])
        assert report.snr_half_db == (127, -128)

    def test_configure_validation(self):
        with pytest.raises(ValueError):
            ConfigureCommand(sequence=0, element_ids=(0, 1), states=(0,))
        with pytest.raises(ValueError):
            ConfigureCommand(sequence=0, element_ids=(), states=())
        with pytest.raises(ValueError):
            ConfigureCommand(sequence=70000, element_ids=(0,), states=(0,))

    def test_decode_garbage(self):
        with pytest.raises(ValueError):
            decode_message(b"")
        with pytest.raises(ValueError):
            decode_message(bytes([99, 0, 0]))
        # Truncated configure command.
        cmd = ConfigureCommand(sequence=1, element_ids=(0, 1), states=(2, 3))
        with pytest.raises(ValueError):
            decode_message(cmd.encode()[:-1])

    def test_message_sizes_are_small(self):
        # Control messages must fit low-rate links: a 3-element command is
        # a handful of bytes.
        cmd = ConfigureCommand(sequence=1, element_ids=(0, 1, 2), states=(1, 2, 3))
        assert cmd.size_bytes <= 12


class TestLinks:
    def test_transfer_time_components(self):
        link = ControlLink(name="test", data_rate_bps=1000.0, base_latency_s=0.01)
        assert link.transfer_time_s(125) == pytest.approx(0.01 + 1.0)

    def test_presets_ordering(self):
        # Wired is fastest, ultrasound slowest for a small message.
        size = 10
        wired = wired_bus_link().transfer_time_s(size)
        ism = sub_ghz_ism_link().transfer_time_s(size)
        ultra = ultrasound_link().transfer_time_s(size)
        assert wired < ism < ultra

    def test_only_wifi_interferes(self):
        assert wifi_inband_link().interferes_with_data_plane
        assert not sub_ghz_ism_link().interferes_with_data_plane
        assert not wired_bus_link().interferes_with_data_plane

    def test_expected_delivery_uses_truncated_geometric(self):
        # Regression: the old implementation charged the untruncated
        # geometric mean 1/(1-p) even though delivery_attempts truncates at
        # max_attempts; the truncated expectation is (1 - p^n)/(1 - p).
        link = ControlLink("lossy", 1e6, 0.0, loss_probability=0.5)
        expected_attempts = (1.0 - 0.5**10) / 0.5
        assert expected_attempts < 1.0 / 0.5  # strictly below the old value
        assert link.expected_attempts() == pytest.approx(expected_attempts)
        assert link.expected_delivery_time_s(100) == pytest.approx(
            expected_attempts * link.transfer_time_s(100)
        )

    def test_expected_delivery_truncation_matters_at_high_loss(self):
        # At p=0.9 and 3 attempts the untruncated mean (10) is nowhere near
        # the truncated one (2.71): a sender that gives up cannot spend 10
        # transmissions on average.
        link = ControlLink("lossy", 1e6, 0.0, loss_probability=0.9)
        assert link.expected_attempts(max_attempts=3) == pytest.approx(
            1.0 + 0.9 + 0.81
        )

    def test_delivery_attempts_distribution(self, rng):
        link = ControlLink("lossy", 1e6, 0.0, loss_probability=0.3)
        attempts = [link.delivery_attempts(rng) for _ in range(2000)]
        delivered = [a for a in attempts if a is not None]
        assert np.mean(delivered) == pytest.approx(1.0 / 0.7, rel=0.1)

    def test_delivery_attempts_give_up_is_explicit(self, rng):
        # Regression: the give-up case used to return max_attempts + 1,
        # indistinguishable from a real attempt count.  Now it is None.
        certain_loss = ControlLink("dead", 1e6, 0.0, loss_probability=0.999999)
        results = {certain_loss.delivery_attempts(rng, max_attempts=3) for _ in range(50)}
        assert results == {None}
        lossless = ControlLink("clean", 1e6, 0.0, loss_probability=0.0)
        assert lossless.delivery_attempts(rng, max_attempts=3) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlLink("bad", 0.0, 0.0)
        with pytest.raises(ValueError):
            ControlLink("bad", 1.0, -1.0)
        with pytest.raises(ValueError):
            ControlLink("bad", 1.0, 0.0, loss_probability=1.0)


class TestProtocol:
    def test_lossless_actuation(self):
        plane = ControlPlane(link=wired_bus_link(), num_elements=3)
        result = plane.actuate(ArrayConfiguration((1, 2, 3)))
        assert result.success
        assert result.transmissions == 1
        assert plane.current_states == (1, 2, 3)

    def test_actuation_time_positive_and_ordered(self):
        wired = ControlPlane(link=wired_bus_link(), num_elements=3)
        ultra = ControlPlane(link=ultrasound_link(), num_elements=3)
        config = ArrayConfiguration((0, 0, 0))
        assert 0 < wired.actuate(config).elapsed_s < ultra.actuate(config).elapsed_s

    def test_lossy_link_retries(self, rng):
        link = ControlLink("lossy", 50e3, 1e-3, loss_probability=0.4)
        plane = ControlPlane(link=link, num_elements=4, max_retries=20)
        result = plane.actuate(ArrayConfiguration((1, 1, 1, 1)), rng=rng)
        assert result.success
        assert result.transmissions >= 1
        assert plane.current_states == (1, 1, 1, 1)

    def test_hopeless_link_fails(self):
        link = ControlLink("dead", 50e3, 1e-3, loss_probability=0.999)
        plane = ControlPlane(link=link, num_elements=2, max_retries=2)
        rng = np.random.default_rng(0)
        result = plane.actuate(ArrayConfiguration((1, 1)), rng=rng)
        assert not result.success

    def test_wrong_configuration_size(self):
        plane = ControlPlane(link=wired_bus_link(), num_elements=2)
        with pytest.raises(ValueError):
            plane.actuate(ArrayConfiguration((0,)))

    def test_sequence_wraps(self):
        plane = ControlPlane(link=wired_bus_link(), num_elements=1)
        plane._sequence = 2**16 - 1
        result = plane.actuate(ArrayConfiguration((0,)))
        assert result.success


class TestLatencyAnalysis:
    def test_wired_supports_packet_timescale_for_small_arrays(self):
        report = analyze_link(wired_bus_link(), num_elements=8)
        assert report.packet_timescale_capable
        assert report.budget_stationary > report.budget_running

    def test_wired_ack_serialisation_limits_large_arrays(self):
        # Per-element acks serialise on the bus: at 64 elements even the
        # wired medium misses the packet-timescale guard.
        report = analyze_link(wired_bus_link(), num_elements=64)
        assert not report.packet_timescale_capable

    def test_ultrasound_too_slow_for_packets(self):
        report = analyze_link(ultrasound_link(), num_elements=16)
        assert not report.packet_timescale_capable

    def test_compare_links_table(self):
        reports = compare_links(
            [wired_bus_link(), sub_ghz_ism_link(), ultrasound_link()], num_elements=8
        )
        assert len(reports) == 3
        names = [r.link_name for r in reports]
        assert names == ["wired bus", "sub-GHz ISM", "ultrasound"]

    def test_budgets_scale_with_actuation(self):
        fast = analyze_link(wired_bus_link(), num_elements=4)
        slow = analyze_link(ultrasound_link(), num_elements=4)
        assert fast.budget_stationary > slow.budget_stationary
