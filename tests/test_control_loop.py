"""Closed-loop control tests: partial actuation, zero budget, determinism.

Regression coverage for the measure -> search -> actuate loop over a lossy
control plane: the ``applied``-state reporting and settle-time accounting
of partial actuations, the zero-measurement-budget degradation path, the
coherence-derived actuation deadline, seeded-loss determinism, and the
``control_robustness`` sweep's worker-count invariance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.links import ControlLink, sub_ghz_ism_link, wired_bus_link
from repro.control.messages import Ack, ConfigureCommand
from repro.control.protocol import SWITCH_SETTLE_S, ControlPlane
from repro.core.configuration import ArrayConfiguration, ConfigurationSpace
from repro.core.controller import PressController
from repro.core.objectives import MinSnrObjective
from repro.core.scheduler import TimingModel, pick_searcher
from repro.core.search import SingleProbeSearch
from repro.experiments.control_robustness import (
    control_link_by_name,
    run_control_robustness,
)


def _partial_failure(loss: float = 0.5, max_seed: int = 200):
    """Find a seeded lossy actuation where some — not all — elements switch."""
    link = ControlLink("lossy", 50e3, 1e-3, loss_probability=loss)
    target = ArrayConfiguration((1, 2))
    for seed in range(max_seed):
        plane = ControlPlane(link=link, num_elements=2, max_retries=0)
        result = plane.actuate(target, rng=np.random.default_rng(seed))
        applied_count = sum(
            1 for got, want in zip(result.applied, target.indices) if got == want
        )
        if not result.success and 0 < applied_count < 2:
            return link, plane, target, result, applied_count
    raise AssertionError("no partial failure found in seed scan")


class TestPartialActuation:
    def test_applied_reports_the_physical_mixed_state(self):
        # Regression: a failed actuation used to report only success=False,
        # hiding that elements whose command arrived did switch.
        _, plane, target, result, applied_count = _partial_failure()
        assert result.applied == plane.current_states
        switched = [
            i for i, (got, want) in enumerate(zip(result.applied, target.indices))
            if got == want
        ]
        held = [i for i in range(2) if i not in switched]
        assert len(switched) == applied_count
        assert all(result.applied[i] == 0 for i in held)  # kept the old state
        assert set(result.unacked) >= set(held)

    def test_settle_time_charged_on_failed_rounds(self):
        # Regression: the failure path skipped SWITCH_SETTLE_S even though
        # elements that received the command physically switched.
        link, _, target, result, applied_count = _partial_failure()
        command = ConfigureCommand(
            sequence=1, element_ids=(0, 1), states=target.indices
        )
        ack = Ack(sequence=1, element_id=0)
        expected = (
            link.transfer_time_s(command.size_bytes)
            + applied_count * link.transfer_time_s(ack.size_bytes)
            + SWITCH_SETTLE_S
        )
        assert result.elapsed_s == pytest.approx(expected)

    def test_no_settle_when_nothing_switched(self):
        link = ControlLink("dead", 50e3, 1e-3, loss_probability=0.999999)
        plane = ControlPlane(link=link, num_elements=2, max_retries=0)
        result = plane.actuate(
            ArrayConfiguration((1, 1)), rng=np.random.default_rng(0)
        )
        assert not result.success
        assert result.applied == (0, 0)
        command = ConfigureCommand(sequence=1, element_ids=(0, 1), states=(1, 1))
        assert result.elapsed_s == pytest.approx(
            link.transfer_time_s(command.size_bytes)
        )

    def test_loss_counters_split_commands_and_acks(self):
        _, _, _, result, _ = _partial_failure()
        assert result.lost_messages == result.lost_commands + result.lost_acks
        assert result.lost_messages >= 1


class TestActuationDeadline:
    def test_deadline_stops_retransmission(self):
        link = ControlLink("lossy", 50e3, 1e-3, loss_probability=0.9)
        plane = ControlPlane(link=link, num_elements=2, max_retries=50)
        command = ConfigureCommand(sequence=1, element_ids=(0, 1), states=(1, 1))
        one_round = link.transfer_time_s(command.size_bytes)
        result = plane.actuate(
            ArrayConfiguration((1, 1)),
            rng=np.random.default_rng(3),
            deadline_s=one_round * 1.5,
        )
        if not result.success:
            assert result.deadline_exceeded
            assert result.transmissions <= 2

    def test_deadline_always_allows_one_transmission(self):
        plane = ControlPlane(link=wired_bus_link(), num_elements=2)
        result = plane.actuate(ArrayConfiguration((1, 1)), deadline_s=1e-12)
        assert result.transmissions == 1
        assert result.success  # lossless: first transmission lands

    def test_deadline_validation(self):
        plane = ControlPlane(link=wired_bus_link(), num_elements=1)
        with pytest.raises(ValueError):
            plane.actuate(ArrayConfiguration((0,)), deadline_s=0.0)

    def test_lossless_actuation_time_matches_actuate(self):
        plane = ControlPlane(link=sub_ghz_ism_link(), num_elements=3)
        analytic = plane.lossless_actuation_s()
        result = plane.actuate(ArrayConfiguration((1, 2, 3)))
        assert result.elapsed_s == pytest.approx(analytic)


class TestZeroBudget:
    def test_pick_searcher_degrades_instead_of_raising(self):
        # Regression: budget 0 (coherence window < one measurement) used to
        # raise ValueError from inside the composed budget -> searcher path.
        space = ConfigurationSpace((4, 4))
        searcher = pick_searcher(space, 0)
        assert isinstance(searcher, SingleProbeSearch)
        held = ArrayConfiguration((2, 3))
        probe = pick_searcher(space, -1, current=held)
        best, score = probe.run(space, lambda c: 1.0 if c == held else 0.0)
        assert best == held
        assert score == 1.0

    def test_controller_survives_zero_budget_round(self, small_array):
        space = small_array.configuration_space()
        table = np.random.default_rng(0).standard_normal((space.size, 8)) + 20.0

        def measure(config):
            return table[space.index_of(config)]

        # The §3 prototype's ~78 ms per configuration: at running speed the
        # ~7 ms coherence window cannot fit even one measurement.
        controller = PressController(
            small_array,
            measure,
            MinSnrObjective(),
            timing=TimingModel(actuation_latency_s=78e-3),
        )
        before = controller.current_configuration
        decision = controller.optimize(speed_mph=6.0)
        assert decision.telemetry.budget <= 0
        assert decision.telemetry.degraded == "zero-budget"
        assert decision.telemetry.searcher == "SingleProbeSearch"
        assert decision.search.num_evaluations == 1
        assert controller.current_configuration == before  # held, not moved


class TestClosedLoopController:
    def _looped(self, small_array, loss: float, seed: int, max_retries: int = 6):
        space = small_array.configuration_space()
        table = np.random.default_rng(7).standard_normal((space.size, 8)) + 20.0

        def measure(config):
            return table[space.index_of(config)]

        plane = ControlPlane(
            link=sub_ghz_ism_link(loss_probability=loss),
            num_elements=small_array.num_elements,
            max_retries=max_retries,
        )
        controller = PressController(
            small_array,
            measure,
            MinSnrObjective(),
            control_plane=plane,
            rng=np.random.default_rng(seed),
        )
        return controller, plane

    def test_tracked_state_matches_physical_state(self, small_array):
        # The core partial-actuation invariant: whatever the lossy protocol
        # did, the controller's view equals the array's physical state.
        controller, plane = self._looped(small_array, loss=0.4, seed=5)
        for _ in range(4):
            controller.optimize(speed_mph=0.5)
            assert controller.current_configuration.indices == plane.current_states

    def test_lossy_rounds_emit_telemetry(self, small_array):
        controller, _ = self._looped(small_array, loss=0.3, seed=2)
        decision = controller.optimize(speed_mph=0.5)
        record = decision.telemetry
        assert record.round_index == 1
        assert record.num_evaluations >= 1
        assert record.retries + record.lost_messages > 0  # the link is lossy
        assert record.best_score == pytest.approx(decision.search.best_score)
        assert controller.telemetry == [record]

    def test_lossless_plane_is_clean(self, small_array):
        controller, plane = self._looped(small_array, loss=0.0, seed=0)
        decision = controller.optimize(speed_mph=0.5)
        assert decision.telemetry.retries == 0
        assert decision.telemetry.lost_messages == 0
        assert decision.telemetry.degraded == ""
        assert decision.applied == decision.search.best
        assert controller.last_acked_configuration == decision.search.best
        assert plane.current_states == decision.search.best.indices

    def test_same_seed_same_loop(self, small_array):
        # Lossy-actuation determinism: identical seeds must reproduce the
        # full telemetry stream (retries, elapsed, scores) bit-for-bit.
        a, _ = self._looped(small_array, loss=0.35, seed=11)
        b, _ = self._looped(small_array, loss=0.35, seed=11)
        for _ in range(3):
            da = a.optimize(speed_mph=0.5)
            db = b.optimize(speed_mph=0.5)
            assert da.telemetry == db.telemetry
            assert da.elapsed_s == db.elapsed_s
            assert da.applied == db.applied

    def test_different_seeds_diverge(self, small_array):
        a, _ = self._looped(small_array, loss=0.35, seed=11)
        b, _ = self._looped(small_array, loss=0.35, seed=12)
        records_a = [a.optimize(speed_mph=0.5).telemetry for _ in range(3)]
        records_b = [b.optimize(speed_mph=0.5).telemetry for _ in range(3)]
        assert records_a != records_b

    def test_plane_size_mismatch_rejected(self, small_array):
        plane = ControlPlane(link=wired_bus_link(), num_elements=5)
        with pytest.raises(ValueError):
            PressController(
                small_array, lambda c: 0.0, MinSnrObjective(), control_plane=plane
            )

    def test_maintenance_requires_cfr_callback(self, small_array):
        with pytest.raises(ValueError):
            PressController(
                small_array,
                lambda c: 0.0,
                MinSnrObjective(),
                maintenance_interval=2,
            )


class TestControlRobustnessSweep:
    def test_unknown_link_rejected_before_fanout(self):
        with pytest.raises(ValueError):
            control_link_by_name("carrier-pigeon", 0.0)
        with pytest.raises(ValueError):
            run_control_robustness(links=("carrier-pigeon",), rounds=1)

    def test_jobs_do_not_change_results(self):
        kwargs = dict(
            links=("sub-ghz",),
            loss_probabilities=(0.0, 0.2),
            speeds_mph=(0.5,),
            rounds=1,
            maintenance_interval=0,
            base_seed=42,
        )
        serial = run_control_robustness(jobs=1, **kwargs)
        fanned = run_control_robustness(jobs=2, **kwargs)
        assert serial.cells == fanned.cells

    def test_loss_costs_show_up_in_cells(self):
        result = run_control_robustness(
            links=("sub-ghz",),
            loss_probabilities=(0.0, 0.3),
            speeds_mph=(0.5,),
            rounds=2,
            maintenance_interval=0,
            base_seed=0,
            jobs=1,
        )
        clean = result.cell("sub-ghz", 0.0, 0.5)
        lossy = result.cell("sub-ghz", 0.3, 0.5)
        assert clean.total_retries == 0
        assert clean.total_lost_messages == 0
        assert lossy.total_retries + lossy.total_lost_messages > 0
        assert "trace_cache_hits" in result.telemetry
