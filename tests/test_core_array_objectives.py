"""Tests for repro.core.array and repro.core.objectives."""

import math

import numpy as np
import pytest

from repro.core.array import PressArray
from repro.core.configuration import ArrayConfiguration
from repro.core.element import omni_element
from repro.core.objectives import (
    CapacityObjective,
    ConditionNumberObjective,
    EffectiveSnrObjective,
    FlatnessObjective,
    InterferenceRatioObjective,
    MeanSnrObjective,
    MinSnrObjective,
    SubbandContrastObjective,
    TargetCfrObjective,
    ThroughputObjective,
    WeightedObjective,
)
from repro.em.geometry import Point
from repro.em.raytracer import RayTracer


@pytest.fixture
def tracer(simple_scene):
    return RayTracer(simple_scene)


class TestPressArray:
    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            PressArray.from_elements(
                [omni_element(Point(0, 0), name="e"), omni_element(Point(1, 1), name="e")]
            )

    def test_configuration_space_shape(self, small_array):
        space = small_array.configuration_space()
        assert space.state_counts == (4, 4)
        assert space.size == 16

    def test_describe_matches_paper_style(self, small_array):
        label = small_array.describe(ArrayConfiguration((0, 3)))
        assert label == "(0, T)"
        label2 = small_array.describe(ArrayConfiguration((1, 2)))
        assert label2 == "(0.5:, :)"

    def test_terminated_elements_contribute_nothing(self, small_array, tracer):
        all_terminated = ArrayConfiguration((3, 3))
        paths = small_array.element_paths(
            all_terminated, Point(2, 3), Point(6, 3), tracer
        )
        assert paths == []

    def test_element_paths_count(self, small_array, tracer):
        config = ArrayConfiguration((0, 1))
        paths = small_array.element_paths(config, Point(2, 3), Point(6, 3), tracer)
        assert len(paths) == 2
        assert all(p.kind == "press-element" for p in paths)

    def test_stub_state_changes_path_phase_not_magnitude(self, small_array, tracer):
        base = small_array.element_paths(
            ArrayConfiguration((0, 3)), Point(2, 3), Point(6, 3), tracer
        )[0]
        shifted = small_array.element_paths(
            ArrayConfiguration((1, 3)), Point(2, 3), Point(6, 3), tracer
        )[0]
        assert abs(shifted.gain) == pytest.approx(abs(base.gain), rel=1e-9)
        # lambda/4 extra path -> pi/2 phase difference (at the carrier).
        ratio = shifted.gain / base.gain
        assert math.atan2(ratio.imag, ratio.real) == pytest.approx(
            -math.pi / 2, abs=0.05
        )

    def test_stub_adds_delay(self, small_array, tracer):
        base = small_array.element_paths(
            ArrayConfiguration((0, 3)), Point(2, 3), Point(6, 3), tracer
        )[0]
        shifted = small_array.element_paths(
            ArrayConfiguration((2, 3)), Point(2, 3), Point(6, 3), tracer
        )[0]
        assert shifted.delay_s > base.delay_s

    def test_channel_composition(self, small_array, tracer):
        env = tracer.trace(Point(2, 3), Point(6, 3))
        config = ArrayConfiguration((0, 0))
        channel = small_array.channel(config, env, Point(2, 3), Point(6, 3), tracer)
        assert len(channel.paths) == len(env) + 2

    def test_aimed_at(self):
        from repro.core.element import parabolic_element

        array = PressArray.from_elements(
            [parabolic_element(Point(0, 0), name="d0"), parabolic_element(Point(2, 0), name="d1")]
        )
        aimed = array.aimed_at(Point(1, 1))
        assert aimed.elements[0].antenna.boresight_rad == pytest.approx(math.pi / 4)

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            PressArray(())


class TestObjectives:
    def test_min_mean_flatness(self):
        snr = np.array([10.0, 20.0, 30.0])
        assert MinSnrObjective()(snr) == 10.0
        assert MeanSnrObjective()(snr) == 20.0
        assert FlatnessObjective()(np.full(8, 5.0)) == 0.0
        assert FlatnessObjective()(snr) < 0.0

    def test_effective_snr_between_min_and_mean(self):
        snr = np.array([0.0, 30.0, 30.0, 30.0])
        value = EffectiveSnrObjective()(snr)
        assert 0.0 < value < 30.0

    def test_throughput_objective_ranks_channels(self):
        good = np.full(52, 30.0)
        bad = np.full(52, 5.0)
        objective = ThroughputObjective()
        assert objective(good) > objective(bad)

    def test_subband_contrast_direction(self):
        snr = np.concatenate([np.full(26, 10.0), np.full(26, 30.0)])
        assert SubbandContrastObjective(favor_upper=True)(snr) == pytest.approx(20.0)
        assert SubbandContrastObjective(favor_upper=False)(snr) == pytest.approx(-20.0)

    def test_interference_ratio(self):
        signal = np.full(8, 30.0)
        interference = np.full(8, 10.0)
        objective = InterferenceRatioObjective(interference_weight=1.0)
        assert objective((signal, interference)) == pytest.approx(20.0)

    def test_condition_number_objective_prefers_identity(self):
        good = np.stack([np.eye(2, dtype=complex)] * 4)
        bad = np.stack([np.array([[1.0, 0.9], [0.9, 1.0]], dtype=complex)] * 4)
        objective = ConditionNumberObjective()
        assert objective(good) > objective(bad)

    def test_capacity_objective_scale_invariant(self):
        matrices = np.stack([np.eye(2, dtype=complex)] * 4)
        objective = CapacityObjective(snr_db=20.0)
        assert objective(matrices) == pytest.approx(objective(10.0 * matrices), rel=1e-6)

    def test_target_cfr_objective(self):
        target = tuple(np.ones(4, dtype=complex))
        objective = TargetCfrObjective(target_cfr=target)
        assert objective(np.ones(4, dtype=complex)) == 0.0
        assert objective(np.zeros(4, dtype=complex)) < 0.0

    def test_target_cfr_magnitude_only(self):
        target = tuple(np.ones(4, dtype=complex))
        objective = TargetCfrObjective(target_cfr=target, magnitude_only=True)
        rotated = np.exp(1j * 0.7) * np.ones(4)
        assert objective(rotated) == pytest.approx(0.0)

    def test_weighted_objective(self):
        snr = np.array([10.0, 20.0])
        combined = WeightedObjective(
            objectives=(MinSnrObjective(), MeanSnrObjective()), weights=(1.0, 2.0)
        )
        assert combined(snr) == pytest.approx(10.0 + 2 * 15.0)

    def test_weighted_objective_validation(self):
        with pytest.raises(ValueError):
            WeightedObjective(objectives=(MinSnrObjective(),), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            WeightedObjective(objectives=(), weights=())
