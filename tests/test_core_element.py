"""Tests for repro.core.element and repro.core.configuration."""

import cmath
import math

import numpy as np
import pytest

from repro.core.configuration import ArrayConfiguration, ConfigurationSpace
from repro.core.element import (
    ElementState,
    PressElement,
    absorptive_load_state,
    active_state,
    omni_element,
    open_stub_state,
    parabolic_element,
    phase_shifter_states,
    sp4t_states,
)
from repro.em.geometry import Point


class TestElementState:
    def test_open_stub_phase_steps(self):
        # Path steps of lambda/4 -> reflection phase steps of pi/2.
        states = [open_stub_state(k * 0.25) for k in range(3)]
        phases = [s.nominal_phase_rad() for s in states]
        step1 = (phases[0] - phases[1]) % (2 * math.pi)
        step2 = (phases[1] - phases[2]) % (2 * math.pi)
        assert step1 == pytest.approx(math.pi / 2, abs=1e-6)
        assert step2 == pytest.approx(math.pi / 2, abs=1e-6)

    def test_open_stub_magnitude_includes_switch_loss(self):
        state = open_stub_state(0.0)
        # Two passes through a 0.45 dB switch -> ~0.9 dB total.
        assert 20 * math.log10(state.magnitude) == pytest.approx(-0.9, abs=0.01)

    def test_stub_phase_is_frequency_dependent(self):
        state = open_stub_state(0.5)
        g1 = state.reflection_coefficient(2.412e9)
        g2 = state.reflection_coefficient(2.484e9)
        assert abs(cmath.phase(g1) - cmath.phase(g2)) > 1e-3

    def test_absorptive_load_terminated(self):
        load = absorptive_load_state()
        assert load.is_terminated
        assert abs(load.reflection_coefficient()) < 0.05
        assert load.label == "T"

    def test_active_state_exceeds_unity(self):
        state = active_state(gain_db=10.0, phase_rad=0.3)
        assert state.magnitude == pytest.approx(10 ** 0.5)
        assert not state.is_terminated

    def test_fixed_phase_applied(self):
        state = ElementState(label="x", magnitude=1.0, fixed_phase_rad=math.pi / 3)
        assert cmath.phase(state.reflection_coefficient()) == pytest.approx(math.pi / 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ElementState(label="bad", extra_path_m=-1.0)
        with pytest.raises(ValueError):
            ElementState(label="bad", magnitude=-0.1)
        with pytest.raises(ValueError):
            open_stub_state(-0.25)


class TestStateSets:
    def test_sp4t_default_is_paper_prototype(self):
        states = sp4t_states()
        assert len(states) == 4
        assert states[-1].is_terminated
        labels = [s.label for s in states]
        assert labels[-1] == "T"

    def test_sp4t_harmonization_variant(self):
        states = sp4t_states(include_load=False, num_phases=4)
        assert len(states) == 4
        assert not any(s.is_terminated for s in states)

    def test_phase_shifter_states_evenly_spaced(self):
        states = phase_shifter_states(8, include_off=False)
        phases = sorted(s.nominal_phase_rad() for s in states)
        diffs = np.diff(phases)
        assert np.allclose(diffs, math.pi / 4, atol=1e-9)

    def test_phase_shifter_off_state(self):
        states = phase_shifter_states(4, include_off=True)
        assert len(states) == 5
        assert states[-1].is_terminated


class TestPressElement:
    def test_element_requires_states(self):
        with pytest.raises(ValueError):
            PressElement(position=Point(0, 0), states=())

    def test_state_indexing(self):
        element = omni_element(Point(1, 1))
        assert element.num_states == 4
        with pytest.raises(IndexError):
            element.state(4)

    def test_pointed_at(self):
        element = parabolic_element(Point(0, 0))
        aimed = element.pointed_at(Point(1, 1))
        assert aimed.antenna.boresight_rad == pytest.approx(math.pi / 4)

    def test_factories(self):
        par = parabolic_element(Point(0, 0), name="dish")
        omn = omni_element(Point(0, 0), name="stick", gain_dbi=5.0)
        assert par.name == "dish"
        assert omn.antenna.peak_gain_dbi == 5.0


class TestConfiguration:
    def test_with_element_state(self):
        config = ArrayConfiguration((0, 1, 2))
        updated = config.with_element_state(1, 3)
        assert updated.indices == (0, 3, 2)
        assert config.indices == (0, 1, 2)  # immutable

    def test_sequence_protocol(self):
        config = ArrayConfiguration((1, 2))
        assert len(config) == 2
        assert config[1] == 2
        assert list(config) == [1, 2]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ArrayConfiguration((-1,))


class TestConfigurationSpace:
    def test_size(self):
        space = ConfigurationSpace((4, 4, 4))
        assert space.size == 64

    def test_enumeration_complete_and_unique(self):
        space = ConfigurationSpace((2, 3))
        configs = list(space.all_configurations())
        assert len(configs) == 6
        assert len({c.indices for c in configs}) == 6

    def test_rank_roundtrip(self):
        space = ConfigurationSpace((4, 3, 2))
        for rank in range(space.size):
            config = space.configuration_at(rank)
            assert space.index_of(config) == rank

    def test_neighbors_count(self):
        space = ConfigurationSpace((4, 4, 4))
        config = ArrayConfiguration((0, 0, 0))
        neighbors = list(space.neighbors(config))
        assert len(neighbors) == 9  # 3 elements x 3 alternative states
        assert all(
            sum(a != b for a, b in zip(n.indices, config.indices)) == 1
            for n in neighbors
        )

    def test_validation(self):
        space = ConfigurationSpace((2, 2))
        with pytest.raises(ValueError):
            space.validate(ArrayConfiguration((0,)))
        with pytest.raises(ValueError):
            space.validate(ArrayConfiguration((0, 2)))

    def test_random_configuration_in_space(self, rng):
        space = ConfigurationSpace((3, 5, 2))
        for _ in range(20):
            space.validate(space.random_configuration(rng))

    def test_rank_out_of_range(self):
        space = ConfigurationSpace((2, 2))
        with pytest.raises(IndexError):
            space.configuration_at(4)

    def test_paper_prototype_space(self):
        # 3 elements x 4 states = 64 configurations (§3.2).
        space = ConfigurationSpace((4, 4, 4))
        assert space.size == 64
