"""Tests for repro.core.inverse and repro.core.controller."""

import numpy as np
import pytest

from repro.core.array import PressArray
from repro.core.controller import PressController
from repro.core.element import omni_element, phase_shifter_states
from repro.core.inverse import (
    element_basis,
    matching_pursuit_paths,
    quantize_to_states,
    solve_element_coefficients,
    synthesize_configuration,
)
from repro.core.objectives import MinSnrObjective
from repro.core.scheduler import TimingModel
from repro.core.search import ExhaustiveSearch, GreedyCoordinateDescent
from repro.em.channel import subcarrier_frequencies
from repro.em.geometry import Point
from repro.em.paths import SignalPath, paths_to_cfr
from repro.em.raytracer import RayTracer


@pytest.fixture
def tracer(simple_scene):
    return RayTracer(simple_scene)


@pytest.fixture
def freqs():
    return subcarrier_frequencies(64, 20e6)


@pytest.fixture
def asym_array():
    """Two elements with distinct geometry (independent basis columns)."""
    return PressArray.from_elements(
        [
            omni_element(Point(3.1, 4.3), name="e0"),
            omni_element(Point(5.2, 5.1), name="e1"),
        ]
    )


class TestElementBasis:
    def test_shape(self, small_array, tracer, freqs):
        basis = element_basis(small_array, Point(2, 3), Point(6, 3), tracer, freqs)
        assert basis.shape == (64, 2)

    def test_matches_forward_model(self, small_array, tracer, freqs):
        basis = element_basis(small_array, Point(2, 3), Point(6, 3), tracer, freqs)
        # The basis column scaled by a state's Gamma should equal the
        # forward element path's CFR for a zero-stub state... only for
        # states without stub delay; use column directly with coefficient 1.
        path = tracer.relay_path(Point(2, 3), small_array.elements[0].position, Point(6, 3),
                                 relay_antenna_in=small_array.elements[0].antenna,
                                 relay_antenna_out=small_array.elements[0].antenna)
        assert np.allclose(basis[:, 0], paths_to_cfr([path], freqs))

    def test_blocked_element_gives_zero_column(self, nlos_scene, freqs):
        # Element positioned so the blocker cuts its view of the RX.
        tracer = RayTracer(nlos_scene)
        blocked = PressArray.from_elements(
            [omni_element(Point(3.0, 3.0), name="b")]  # on the link line, behind blocker
        )
        basis = element_basis(blocked, Point(2, 3), Point(6, 3), tracer, freqs)
        assert np.allclose(basis, 0.0)


class TestSolveCoefficients:
    def test_exact_solution_when_achievable(self, asym_array, tracer, freqs):
        basis = element_basis(asym_array, Point(2, 3), Point(6, 3), tracer, freqs)
        env = np.zeros(64, dtype=complex)
        wanted = np.array([0.5 + 0.2j, -0.3 + 0.1j])
        target = basis @ wanted
        solved = solve_element_coefficients(target, env, basis, max_magnitude=None)
        assert np.allclose(solved, wanted, atol=1e-6)

    def test_passivity_projection(self, asym_array, tracer, freqs):
        basis = element_basis(asym_array, Point(2, 3), Point(6, 3), tracer, freqs)
        env = np.zeros(64, dtype=complex)
        # Ask for far more than passive elements can deliver.
        target = basis @ np.array([50.0 + 0j, 50.0 + 0j])
        solved = solve_element_coefficients(target, env, basis, max_magnitude=1.0)
        assert np.all(np.abs(solved) <= 1.0 + 1e-9)

    def test_regularization_shrinks(self, asym_array, tracer, freqs):
        basis = element_basis(asym_array, Point(2, 3), Point(6, 3), tracer, freqs)
        env = np.zeros(64, dtype=complex)
        target = basis @ np.array([0.9 + 0j, 0.9 + 0j])
        plain = solve_element_coefficients(target, env, basis, max_magnitude=None)
        ridge = solve_element_coefficients(
            target, env, basis, max_magnitude=None, regularization=1e-3
        )
        assert np.linalg.norm(ridge) < np.linalg.norm(plain) + 1e-12

    def test_shape_mismatch(self, asym_array, tracer, freqs):
        basis = element_basis(asym_array, Point(2, 3), Point(6, 3), tracer, freqs)
        with pytest.raises(ValueError):
            solve_element_coefficients(np.zeros(10), np.zeros(10), basis)


class TestQuantize:
    def test_snaps_to_nearest_state(self, tracer):
        array = PressArray.from_elements(
            [omni_element(Point(3, 4), name="p", states=phase_shifter_states(4, include_off=True))]
        )
        # Ask for exactly state P1's Gamma (phase pi/2).
        wanted = np.array([1j])
        config = quantize_to_states(wanted, array, tracer.frequency_hz)
        assert array.elements[0].state(config[0]).label == "P1"

    def test_off_state_for_zero(self, tracer):
        array = PressArray.from_elements(
            [omni_element(Point(3, 4), name="p", states=phase_shifter_states(4, include_off=True))]
        )
        config = quantize_to_states(np.array([0.0 + 0j]), array, tracer.frequency_hz)
        assert array.elements[0].state(config[0]).is_terminated

    def test_count_mismatch(self, small_array, tracer):
        with pytest.raises(ValueError):
            quantize_to_states(np.array([1.0]), small_array, tracer.frequency_hz)


class TestMatchingPursuit:
    def test_recovers_single_path(self, freqs):
        true = SignalPath(gain=0.7 - 0.2j, delay_s=80e-9)
        cfr = paths_to_cfr([true], freqs)
        recovered = matching_pursuit_paths(cfr, freqs, num_paths=1)
        assert len(recovered) == 1
        assert recovered[0].delay_s == pytest.approx(80e-9, abs=2e-9)
        assert recovered[0].gain == pytest.approx(true.gain, abs=0.05)

    def test_recovers_two_separated_paths(self, freqs):
        paths = [
            SignalPath(gain=1.0 + 0j, delay_s=40e-9),
            SignalPath(gain=0.5j, delay_s=260e-9),
        ]
        cfr = paths_to_cfr(paths, freqs)
        recovered = matching_pursuit_paths(cfr, freqs, num_paths=4)
        delays = sorted(p.delay_s for p in recovered[:2])
        assert delays[0] == pytest.approx(40e-9, abs=4e-9)
        assert delays[1] == pytest.approx(260e-9, abs=4e-9)

    def test_residual_shrinks(self, freqs):
        paths = [SignalPath(gain=1.0, delay_s=50e-9), SignalPath(gain=0.4, delay_s=150e-9)]
        cfr = paths_to_cfr(paths, freqs)
        recovered = matching_pursuit_paths(cfr, freqs, num_paths=6)
        residual = cfr - paths_to_cfr(recovered, freqs)
        assert np.linalg.norm(residual) < 0.05 * np.linalg.norm(cfr)

    def test_zero_cfr(self, freqs):
        assert matching_pursuit_paths(np.zeros(64, dtype=complex), freqs) == []

    def test_invalid_args(self, freqs):
        with pytest.raises(ValueError):
            matching_pursuit_paths(np.zeros(64), freqs, max_delay_s=0.0)
        with pytest.raises(ValueError):
            matching_pursuit_paths(np.zeros(10), freqs)


class TestSynthesize:
    def test_end_to_end_reduces_error(self, tracer, freqs):
        # Fine phase states so quantisation error is small.
        array = PressArray.from_elements(
            [
                omni_element(Point(3.1, 4.3), name="p0", states=phase_shifter_states(8)),
                omni_element(Point(5.2, 5.1), name="p1", states=phase_shifter_states(8)),
            ]
        )
        env = tracer.trace(Point(2, 3), Point(6, 3))
        env_cfr = paths_to_cfr(env, freqs)
        # Target: environment plus a fully-reflective first element.
        basis = element_basis(array, Point(2, 3), Point(6, 3), tracer, freqs)
        target = env_cfr + basis @ np.array([0.9 * np.exp(0.3j), 0.0])
        solution = synthesize_configuration(
            array, target, env, Point(2, 3), Point(6, 3), tracer, freqs
        )
        baseline_error = float(np.sqrt(np.mean(np.abs(env_cfr - target) ** 2)))
        assert solution.residual_rms < baseline_error
        assert np.all(np.abs(solution.coefficients) <= 1.0 + 1e-9)


class TestController:
    def _controller(self, small_array, objective=None, table_seed=0):
        space = small_array.configuration_space()
        rng = np.random.default_rng(table_seed)
        table = rng.standard_normal((space.size, 8)) + 20.0

        def measure(config):
            return table[space.index_of(config)]

        return PressController(
            small_array, measure, objective or MinSnrObjective()
        ), table

    def test_exhaustive_optimum(self, small_array):
        controller, table = self._controller(small_array)
        decision = controller.optimize(searcher=ExhaustiveSearch())
        assert decision.search.best_score == pytest.approx(table.min(axis=1).max())
        assert controller.current_configuration == decision.configuration

    def test_auto_budgeting_at_low_speed(self, small_array):
        controller, _ = self._controller(small_array)
        decision = controller.optimize(speed_mph=0.5)
        assert decision.within_coherence

    def test_auto_budgeting_at_running_speed_uses_fewer_measurements(self, small_array):
        controller, _ = self._controller(small_array)
        slow = controller.optimize(speed_mph=0.5)
        fast = controller.optimize(speed_mph=6.0)
        assert fast.search.num_evaluations <= slow.search.num_evaluations

    def test_slow_control_plane_misses_coherence(self, small_array):
        space = small_array.configuration_space()

        def measure(config):
            return np.full(8, 20.0)

        # The §3 prototype's ~78 ms per configuration.
        controller = PressController(
            small_array,
            measure,
            MinSnrObjective(),
            timing=TimingModel(actuation_latency_s=78e-3),
        )
        decision = controller.optimize(searcher=ExhaustiveSearch(), speed_mph=0.5)
        assert not decision.within_coherence

    def test_reoptimize_only_when_degraded(self, small_array):
        controller, _ = self._controller(small_array)
        controller.optimize(searcher=ExhaustiveSearch())
        good = controller.reoptimize_if_degraded(threshold=-100.0)
        assert good is None
        forced = controller.reoptimize_if_degraded(
            threshold=1e9, searcher=GreedyCoordinateDescent()
        )
        assert forced is not None

    def test_history_recorded(self, small_array):
        controller, _ = self._controller(small_array)
        controller.optimize(searcher=ExhaustiveSearch())
        controller.optimize(searcher=GreedyCoordinateDescent())
        assert len(controller.history) == 2
