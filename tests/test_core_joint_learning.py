"""Tests for repro.core.joint, repro.core.learning and repro.core.hybrid."""

import numpy as np
import pytest

from repro.core import (
    ArrayConfiguration,
    ConfigurationSpace,
    CrossEntropySearch,
    EpsilonGreedyBandit,
    ExhaustiveSearch,
    GroupedConfigurationSpace,
    LinkObjective,
    MinSnrObjective,
    PressArray,
    compare_strategies,
    hybrid_array,
    omni_element,
    optimize_hybrid,
    optimize_joint,
    optimize_per_link,
    tiered_groups,
)
from repro.em.geometry import Point


@pytest.fixture
def space():
    return ConfigurationSpace((4, 4, 4))


def _table_links(space, seeds=(0, 1)):
    """Synthetic links whose per-config scores come from random tables."""
    links = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        table = rng.standard_normal((space.size, 8)) + 20.0

        def measure(config, table=table):
            return table[space.index_of(config)]

        links.append(
            LinkObjective(name=f"L{seed}", measure=measure, objective=MinSnrObjective())
        )
    return links


class TestJointStrategies:
    def test_per_link_is_individually_optimal(self, space):
        links = _table_links(space)
        result = optimize_per_link(links, space)
        for link in links:
            own = ExhaustiveSearch().search(space, link.score)
            assert result.per_link_scores[link.name] == pytest.approx(own.best_score)

    def test_joint_uses_one_configuration(self, space):
        links = _table_links(space)
        result = optimize_joint(links, space)
        assert result.num_distinct_configurations == 1
        configs = {c.indices for c in result.assignments.values()}
        assert len(configs) == 1

    def test_per_link_at_least_joint_per_link(self, space):
        links = _table_links(space)
        per_link = optimize_per_link(links, space)
        joint = optimize_joint(links, space)
        for link in links:
            assert (
                per_link.per_link_scores[link.name]
                >= joint.per_link_scores[link.name] - 1e-9
            )

    def test_joint_aggregate_is_best_single_config(self, space):
        links = _table_links(space)
        joint = optimize_joint(links, space)
        # No single configuration can beat the joint optimum's aggregate.
        best = max(
            np.mean([link.score(c) for link in links])
            for c in space.all_configurations()
        )
        assert joint.aggregate_score(links) == pytest.approx(best)

    def test_hybrid_between_extremes(self, space):
        links = _table_links(space, seeds=(0, 1, 2))
        results = compare_strategies(links, space, tolerance=0.5)
        hybrid = results["hybrid"]
        assert (
            results["joint"].num_distinct_configurations
            <= hybrid.num_distinct_configurations
            <= results["per-link"].num_distinct_configurations
        )
        assert (
            hybrid.aggregate_score(links)
            >= results["joint"].aggregate_score(links) - 1e-9
        )

    def test_hybrid_tolerance_zero_reduces_to_per_link_quality(self, space):
        links = _table_links(space)
        hybrid = optimize_hybrid(links, space, tolerance=0.0)
        per_link = optimize_per_link(links, space)
        for link in links:
            assert (
                hybrid.per_link_scores[link.name]
                >= per_link.per_link_scores[link.name] - 1e-9
            )

    def test_hybrid_large_tolerance_merges(self, space):
        links = _table_links(space, seeds=(0, 1, 2))
        merged = optimize_hybrid(links, space, tolerance=1e9)
        assert merged.num_distinct_configurations == 1

    def test_schedule_generated(self, space):
        links = _table_links(space)
        result = optimize_per_link(links, space)
        schedule = result.schedule(space=space)
        assert len(schedule.slots) == 2

    def test_empty_links_rejected(self, space):
        with pytest.raises(ValueError):
            optimize_per_link([], space)
        with pytest.raises(ValueError):
            optimize_joint([], space)

    def test_weight_validated_at_construction(self, space):
        links = _table_links(space)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                LinkObjective(
                    name="bad",
                    measure=links[0].measure,
                    objective=MinSnrObjective(),
                    weight=bad,
                )


class TestMeasurementAccounting:
    """Sounding counts are exact, not approximate: every probe of every
    link is charged once and nothing is charged twice."""

    def test_per_link_counts_one_search_per_link(self, space):
        links = _table_links(space, seeds=(0, 1, 2))
        result = optimize_per_link(links, space)
        assert result.num_measurements == 3 * space.size

    def test_joint_probe_sounds_every_link(self, space):
        links = _table_links(space, seeds=(0, 1, 2))
        result = optimize_joint(links, space)
        # One exhaustive pass of joint probes; the winner's per-link
        # scores are read from the search's own probes, never re-measured.
        assert result.num_measurements == space.size * 3

    def test_hybrid_counts_cluster_probes(self, space):
        links = _table_links(space, seeds=(0, 1, 2))
        # tolerance so large everyone joins the first cluster: each of the
        # two later links probes exactly that one cluster configuration.
        merged = optimize_hybrid(links, space, tolerance=1e9)
        assert merged.num_measurements == 3 * space.size + 2
        # tolerance so strict nobody shares: link i probes the i clusters
        # founded before it (0 + 1 + 2).
        split = optimize_hybrid(links, space, tolerance=-1e9)
        assert split.num_measurements == 3 * space.size + 3
        assert split.num_distinct_configurations == 3

    def test_joint_measurement_callbacks_counted_exactly(self, space):
        calls = {"n": 0}
        rng = np.random.default_rng(0)
        table = rng.standard_normal((space.size, 8))

        def measure(config):
            calls["n"] += 1
            return table[space.index_of(config)]

        links = [
            LinkObjective(
                name=f"C{i}", measure=measure, objective=MinSnrObjective()
            )
            for i in range(2)
        ]
        result = optimize_joint(links, space)
        assert result.num_measurements == calls["n"]


class TestScheduleRanks:
    """JointResult.schedule() without an explicit space must derive slot
    ranks from the distinct assigned configurations, so links sharing a
    configuration share a rank (regression: it previously enumerated the
    space, crashing or mis-ranking on unenumerable arrays)."""

    def test_joint_result_switches_zero_without_space(self, space):
        links = _table_links(space)
        joint = optimize_joint(links, space)
        schedule = joint.schedule()  # no space
        assert len(schedule.slots) == 2
        assert schedule.num_switches == 0
        assert schedule.switching_time_per_period_s == 0.0

    def test_shared_configs_share_ranks_with_and_without_space(self, space):
        # Two identical links (same table) plus one distinct one.
        links = _table_links(space, seeds=(0, 0, 1))
        links = [
            LinkObjective(
                name=f"L{i}", measure=link.measure, objective=link.objective
            )
            for i, link in enumerate(links)
        ]
        result = optimize_per_link(links, space)
        assert result.num_distinct_configurations == 2
        without = result.schedule()
        with_space = result.schedule(space=space)
        ranks_without = [slot.configuration_rank for slot in without.slots]
        ranks_with = [slot.configuration_rank for slot in with_space.slots]
        # same sharing structure either way: equal ranks <=> equal configs
        for a, b in zip(without.slots, with_space.slots):
            assert a.link_name == b.link_name
        for i in range(3):
            for j in range(3):
                assert (ranks_without[i] == ranks_without[j]) == (
                    ranks_with[i] == ranks_with[j]
                )
        assert without.num_switches == with_space.num_switches

    def test_distinct_configs_count_cyclic_switches(self, space):
        links = _table_links(space, seeds=(0, 1))
        result = optimize_per_link(links, space)
        if result.num_distinct_configurations == 2:
            schedule = result.schedule()
            assert schedule.num_switches == 2  # A->B and B->A per period
            assert schedule.switching_time_per_period_s > 0.0


class TestCrossEntropy:
    def test_finds_near_optimum(self, space):
        rng = np.random.default_rng(3)
        table = rng.standard_normal(space.size)

        def score(config):
            return float(table[space.index_of(config)])

        result = CrossEntropySearch(population=16, iterations=8, seed=0).search(
            space, score
        )
        # On an unstructured (pure-noise) landscape a distribution-based
        # optimiser is only expected to land in the top tail.
        assert result.best_score >= np.quantile(table, 0.95)
        # ... while spending far fewer measurements than enumeration.
        assert result.num_evaluations < space.size

    def test_solves_separable_exactly(self):
        space = ConfigurationSpace((4, 4, 4, 4))
        weights = np.random.default_rng(0).standard_normal((4, 4))

        def score(config):
            return float(sum(weights[e, s] for e, s in enumerate(config.indices)))

        result = CrossEntropySearch(population=24, iterations=10, seed=1).search(
            space, score
        )
        assert result.best_score == pytest.approx(weights.max(axis=1).sum(), abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossEntropySearch(population=1)
        with pytest.raises(ValueError):
            CrossEntropySearch(elite_fraction=0.0)
        with pytest.raises(ValueError):
            CrossEntropySearch(smoothing=1.5)


class TestBandit:
    def test_converges_on_static_channel(self, space):
        rng = np.random.default_rng(5)
        table = rng.standard_normal(space.size)

        def reward(config):
            return float(table[space.index_of(config)])

        bandit = EpsilonGreedyBandit(space, epsilon=0.4, forgetting=1.0, seed=0)
        for _ in range(600):
            bandit.step(reward)
        best = bandit.best_known()
        assert reward(best) >= table.max() - 0.4

    def test_tracks_changing_channel(self, space):
        # The optimum flips between two configurations; with forgetting the
        # bandit should follow.
        good_a = space.configuration_at(5)
        good_b = space.configuration_at(50)
        phase = {"current": good_a}

        def reward(config):
            return 10.0 if config.indices == phase["current"].indices else 0.0

        bandit = EpsilonGreedyBandit(space, epsilon=0.3, forgetting=0.8, seed=1)
        for _ in range(400):
            bandit.step(reward)
        assert bandit.best_known().indices == good_a.indices
        phase["current"] = good_b
        for _ in range(800):
            bandit.step(reward)
        assert bandit.best_known().indices == good_b.indices

    def test_validation(self, space):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(space, epsilon=1.5)
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(space, forgetting=0.0)

    def test_empty_best_known(self, space):
        bandit = EpsilonGreedyBandit(space)
        assert bandit.best_known() is None


class TestHybridArray:
    def test_mix_counts(self):
        array = hybrid_array(
            passive_positions=[Point(0, 0), Point(1, 0), Point(2, 0)],
            active_positions=[Point(3, 0)],
        )
        assert array.num_elements == 4
        active = array.elements[-1]
        assert any(s.magnitude > 1.0 for s in active.states)
        assert any(s.is_terminated for s in active.states)

    def test_active_cannot_outnumber_passive(self):
        with pytest.raises(ValueError):
            hybrid_array(
                passive_positions=[Point(0, 0)],
                active_positions=[Point(1, 0), Point(2, 0)],
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hybrid_array(passive_positions=[], active_positions=[])


class TestTieredGroups:
    @pytest.fixture
    def big_array(self):
        return PressArray.from_elements(
            [omni_element(Point(float(i), 0.0), name=f"e{i}") for i in range(6)]
        )

    def test_partition(self, big_array):
        groups = tiered_groups(big_array, group_size=2)
        assert len(groups) == 3
        covered = sorted(i for g in groups for i in g.element_indices)
        assert covered == list(range(6))

    def test_grouped_space_smaller(self, big_array):
        groups = tiered_groups(big_array, group_size=2, num_profiles=3)
        grouped = GroupedConfigurationSpace(big_array, groups)
        raw = big_array.configuration_space().size
        assert grouped.size < raw
        assert grouped.size == 4**3  # (1 off + 3 profiles) per group

    def test_expansion_valid(self, big_array):
        groups = tiered_groups(big_array, group_size=3)
        grouped = GroupedConfigurationSpace(big_array, groups)
        space = big_array.configuration_space()
        for config in grouped.all_configurations():
            space.validate(config)

    def test_off_decision_terminates_group(self, big_array):
        groups = tiered_groups(big_array, group_size=2)
        grouped = GroupedConfigurationSpace(big_array, groups)
        decision = ArrayConfiguration((0, 0, 0))  # all groups off
        config = grouped.to_configuration(decision)
        for element, state_index in zip(big_array.elements, config.indices):
            assert element.state(state_index).is_terminated

    def test_incomplete_partition_rejected(self, big_array):
        groups = tiered_groups(big_array, group_size=2)[:2]
        with pytest.raises(ValueError):
            GroupedConfigurationSpace(big_array, groups)
