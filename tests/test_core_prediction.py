"""Tests for repro.core.prediction and repro.core.relaxation."""

import numpy as np
import pytest

from repro.core import (
    ArrayConfiguration,
    ExhaustiveSearch,
    MinSnrObjective,
    PressArray,
    omni_element,
)
from repro.core.prediction import (
    coefficient_vector,
    fit_channel_model,
    identification_configurations,
    predict_and_pick,
)
from repro.core.relaxation import optimize_phases, softmin_power_db
from repro.core.element import phase_shifter_states
from repro.em.geometry import Point
from repro.experiments import build_nlos_setup, used_subcarrier_mask


@pytest.fixture(scope="module")
def identified():
    """A study setup plus its identified linear channel model."""
    setup = build_nlos_setup(2)
    mask = used_subcarrier_mask()
    schedule = identification_configurations(setup.array)
    cfrs = [
        setup.testbed.channel(setup.tx_device, setup.rx_device, c).cfr()[mask]
        for c in schedule
    ]
    model = fit_channel_model(
        setup.array, schedule, cfrs, setup.testbed.frequency_hz
    )
    return setup, model, mask, schedule


class TestCoefficientVector:
    def test_shape_and_values(self):
        array = PressArray.from_elements(
            [omni_element(Point(1, 1), name="a"), omni_element(Point(2, 2), name="b")]
        )
        gammas = coefficient_vector(array, ArrayConfiguration((0, 3)), 2.462e9)
        assert gammas.shape == (2,)
        assert abs(gammas[0]) > 0.8  # open stub
        assert abs(gammas[1]) < 0.05  # terminated


class TestIdentificationSchedule:
    def test_schedule_with_off_state(self):
        array = PressArray.from_elements(
            [omni_element(Point(1, 1), name="a"), omni_element(Point(2, 2), name="b")]
        )
        schedule = identification_configurations(array)
        assert len(schedule) == 3  # all-off + one per element
        # First entry: everything terminated.
        base = schedule[0]
        for element, index in zip(array.elements, base.indices):
            assert element.state(index).is_terminated

    def test_schedule_without_off_state(self):
        states = phase_shifter_states(4, include_off=False)
        array = PressArray.from_elements(
            [omni_element(Point(1, 1), name="a", states=states)]
        )
        schedule = identification_configurations(array)
        assert len(schedule) >= 2  # N + 1 random probes

    def test_extra_configurations(self):
        array = PressArray.from_elements([omni_element(Point(1, 1), name="a")])
        schedule = identification_configurations(array, extra=3)
        assert len(schedule) == 2 + 3

    def test_negative_extra_rejected(self):
        array = PressArray.from_elements([omni_element(Point(1, 1), name="a")])
        with pytest.raises(ValueError):
            identification_configurations(array, extra=-1)


class TestFitAndPredict:
    def test_prediction_accuracy(self, identified):
        setup, model, mask, _ = identified
        for rank in (7, 23, 41, 60):
            config = setup.array.configuration_space().configuration_at(rank)
            predicted = model.predict_cfr(setup.array, config)
            actual = setup.testbed.channel(
                setup.tx_device, setup.rx_device, config
            ).cfr()[mask]
            error = np.linalg.norm(predicted - actual) / np.linalg.norm(actual)
            assert error < 0.05  # stub dispersion only

    def test_predicted_optimum_matches_true(self, identified):
        setup, model, mask, schedule = identified
        best_pred, _ = predict_and_pick(setup.array, model, MinSnrObjective())

        def true_min(config):
            return float(
                setup.testbed.measure_csi(
                    setup.tx_device, setup.rx_device, config
                ).snr_db[mask].min()
            )

        truth = ExhaustiveSearch().search(
            setup.array.configuration_space(), true_min
        )
        # The predicted best must be within a small margin of the true
        # optimum when measured for real.
        assert true_min(best_pred) >= truth.best_score - 0.5

    def test_measurement_savings(self, identified):
        setup, _, _, schedule = identified
        assert len(schedule) < setup.array.configuration_space().size // 8

    def test_fit_requires_enough_measurements(self, identified):
        setup, _, mask, schedule = identified
        cfrs = [np.zeros(52, dtype=complex)] * 2
        with pytest.raises(ValueError):
            fit_channel_model(
                setup.array, schedule[:2], cfrs, setup.testbed.frequency_hz
            )

    def test_fit_count_mismatch(self, identified):
        setup, _, _, schedule = identified
        with pytest.raises(ValueError):
            fit_channel_model(
                setup.array,
                schedule,
                [np.zeros(52, dtype=complex)],
                setup.testbed.frequency_hz,
            )

    def test_fit_with_noise_and_regularization(self, identified, rng):
        setup, clean_model, mask, schedule = identified
        noisy_cfrs = []
        for config in schedule:
            cfr = setup.testbed.channel(
                setup.tx_device, setup.rx_device, config
            ).cfr()[mask]
            scale = 0.02 * np.abs(cfr).mean()
            noisy_cfrs.append(
                cfr
                + scale * (rng.standard_normal(52) + 1j * rng.standard_normal(52))
            )
        model = fit_channel_model(
            setup.array,
            schedule,
            noisy_cfrs,
            setup.testbed.frequency_hz,
            regularization=1e-12,
        )
        config = setup.array.configuration_space().configuration_at(30)
        clean = clean_model.predict_cfr(setup.array, config)
        noisy = model.predict_cfr(setup.array, config)
        assert np.linalg.norm(noisy - clean) / np.linalg.norm(clean) < 0.3


class TestRelaxation:
    def test_softmin_below_mean_above_min(self):
        cfr = np.array([1.0, 1.0, 0.1, 1.0], dtype=complex)
        power_db = 10 * np.log10(np.abs(cfr) ** 2)
        value = softmin_power_db(cfr, sharpness=2.0)
        assert power_db.min() <= value < power_db.mean()

    def test_softmin_sharpness_converges_to_min(self):
        cfr = np.array([1.0, 0.2, 0.7], dtype=complex)
        power_db = 10 * np.log10(np.abs(cfr) ** 2)
        assert softmin_power_db(cfr, sharpness=50.0) == pytest.approx(
            power_db.min(), abs=0.05
        )

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            softmin_power_db(np.ones(4, dtype=complex), sharpness=0.0)

    def test_continuous_beats_discrete(self, identified):
        setup, model, _, _ = identified
        solution = optimize_phases(setup.array, model, restarts=6)
        _, discrete_score = predict_and_pick(
            setup.array, model, MinSnrObjective()
        )
        # predict_and_pick scores are min |H|^2 dB; comparable directly.
        assert solution.continuous_min_db >= discrete_score - 0.5

    def test_quantization_loss_nonnegative_ish(self, identified):
        setup, model, _, _ = identified
        solution = optimize_phases(setup.array, model, restarts=4)
        # Rounding cannot beat the continuous optimum by more than noise.
        assert solution.quantized_min_db <= solution.continuous_min_db + 0.5

    def test_validation(self, identified):
        setup, model, _, _ = identified
        with pytest.raises(ValueError):
            optimize_phases(setup.array, model, iterations=0)
        with pytest.raises(ValueError):
            optimize_phases(setup.array, model, magnitude=1.5)
        with pytest.raises(ValueError):
            optimize_phases(
                setup.array, model, initial_phases=np.zeros(99)
            )
