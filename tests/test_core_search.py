"""Tests for repro.core.search and repro.core.scheduler."""

import numpy as np
import pytest

from repro.core.configuration import ConfigurationSpace
from repro.core.scheduler import (
    TimingModel,
    coherence_budget_table,
    measurement_budget,
    packet_timescale_schedule,
    pick_searcher,
)
from repro.core.search import (
    ExhaustiveSearch,
    GeneticSearch,
    GreedyCoordinateDescent,
    RandomSearch,
    SimulatedAnnealing,
    SingleProbeSearch,
)


@pytest.fixture
def space():
    return ConfigurationSpace((4, 4, 4))


def make_score(space, seed=0):
    """A deterministic pseudo-random score over the space."""
    rng = np.random.default_rng(seed)
    table = rng.standard_normal(space.size)

    def score(config):
        return float(table[space.index_of(config)])

    return score, float(table.max())


class TestExhaustive:
    def test_finds_global_optimum(self, space):
        score, best = make_score(space)
        result = ExhaustiveSearch().search(space, score)
        assert result.best_score == pytest.approx(best)
        assert result.num_evaluations == space.size

    def test_trajectory_monotone(self, space):
        score, _ = make_score(space)
        result = ExhaustiveSearch().search(space, score)
        assert all(a <= b for a, b in zip(result.trajectory, result.trajectory[1:]))


class TestRandomSearch:
    def test_respects_budget(self, space):
        score, _ = make_score(space)
        result = RandomSearch(budget=10, seed=1).search(space, score)
        assert result.num_evaluations <= 10

    def test_larger_budget_not_worse(self, space):
        score, _ = make_score(space)
        small = RandomSearch(budget=5, seed=2).search(space, score)
        large = RandomSearch(budget=60, seed=2).search(space, score)
        assert large.best_score >= small.best_score

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RandomSearch(budget=0)


class TestGreedy:
    def test_uses_fewer_evaluations_than_exhaustive(self, space):
        score, _ = make_score(space)
        result = GreedyCoordinateDescent().search(space, score)
        assert result.num_evaluations < space.size

    def test_result_is_local_optimum(self, space):
        score, _ = make_score(space)
        result = GreedyCoordinateDescent(max_sweeps=10).search(space, score)
        for neighbor in space.neighbors(result.best):
            assert score(neighbor) <= result.best_score + 1e-12

    def test_separable_objective_solved_exactly(self):
        # When the objective decomposes per element, coordinate descent is optimal.
        space = ConfigurationSpace((4, 4, 4))
        weights = np.array([[0.0, 1, 2, 3], [3, 0, 1, 2], [1, 3, 0, 2]], dtype=float)

        def score(config):
            return float(sum(weights[e, s] for e, s in enumerate(config.indices)))

        result = GreedyCoordinateDescent().search(space, score)
        assert result.best_score == pytest.approx(9.0)  # 3 + 3 + 3

    def test_restarts_improve_or_match(self, space):
        score, _ = make_score(space, seed=5)
        one = GreedyCoordinateDescent(restarts=1, seed=3).search(space, score)
        many = GreedyCoordinateDescent(restarts=4, seed=3).search(space, score)
        assert many.best_score >= one.best_score


class TestAnnealingAndGenetic:
    def test_annealing_obeys_budget(self, space):
        score, _ = make_score(space)
        result = SimulatedAnnealing(budget=30, seed=0).search(space, score)
        assert result.num_evaluations <= 30

    def test_annealing_finds_good_solution(self, space):
        score, best = make_score(space)
        result = SimulatedAnnealing(budget=200, seed=0).search(space, score)
        assert result.best_score >= best - 1.0

    def test_genetic_valid_result(self, space):
        score, _ = make_score(space)
        result = GeneticSearch(population=8, generations=5, seed=0).search(space, score)
        space.validate(result.best)
        assert result.best_score == pytest.approx(score(result.best))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(budget=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.5)
        with pytest.raises(ValueError):
            GeneticSearch(population=1)
        with pytest.raises(ValueError):
            GeneticSearch(mutation_rate=2.0)


class TestMemoisation:
    def test_repeat_configs_not_recounted(self, space):
        calls = []

        def score(config):
            calls.append(config.indices)
            return 0.0

        searcher = SimulatedAnnealing(budget=200, seed=0)
        result = searcher.search(space, score)
        # Memoised: unique evaluations never exceed the space size.
        assert result.num_evaluations <= space.size
        assert len(calls) == result.num_evaluations


class TestTimingModel:
    def test_per_measurement(self):
        timing = TimingModel(100e-6, 500e-6, 10e-6)
        assert timing.per_measurement_s == pytest.approx(610e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(actuation_latency_s=-1.0)

    def test_budget_scales_with_coherence(self):
        timing = TimingModel()
        stationary = measurement_budget(0.089, timing)
        running = measurement_budget(0.0074, timing)
        assert stationary > running > 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            measurement_budget(0.0, TimingModel())
        with pytest.raises(ValueError):
            measurement_budget(1.0, TimingModel(), safety_fraction=0.0)


class TestPickSearcher:
    def test_full_budget_picks_exhaustive(self, space):
        assert isinstance(pick_searcher(space, space.size), ExhaustiveSearch)

    def test_medium_budget_picks_greedy(self, space):
        assert isinstance(pick_searcher(space, 20), GreedyCoordinateDescent)

    def test_tiny_budget_picks_random(self, space):
        searcher = pick_searcher(space, 4)
        assert isinstance(searcher, RandomSearch)
        assert searcher.budget == 4

    def test_zero_budget_degrades_to_single_probe(self, space):
        # Regression: budget 0 is a legitimate output of measurement_budget
        # (coherence window < one measurement) and used to raise ValueError.
        searcher = pick_searcher(space, 0)
        assert isinstance(searcher, SingleProbeSearch)


class TestPacketSchedule:
    def test_round_robin_slots(self):
        schedule = packet_timescale_schedule(["a", "b", "c"], [1, 2, 3])
        assert schedule.period_s == pytest.approx(3 * 1.5e-3)
        assert [slot.link_name for slot in schedule.slots] == ["a", "b", "c"]
        assert schedule.slots[1].start_s == pytest.approx(1.5e-3)

    def test_feasibility_depends_on_actuation(self):
        fast = TimingModel(actuation_latency_s=50e-6)
        slow = TimingModel(actuation_latency_s=5e-3)
        assert packet_timescale_schedule(["a"], [0], timing=fast).feasible
        assert not packet_timescale_schedule(["a"], [0], timing=slow).feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            packet_timescale_schedule(["a"], [1, 2])
        with pytest.raises(ValueError):
            packet_timescale_schedule([], [])


def test_coherence_budget_table():
    rows = coherence_budget_table(TimingModel())
    assert len(rows) == 5
    budgets = [row["budget"] for row in rows]
    assert all(a >= b for a, b in zip(budgets, budgets[1:]))
