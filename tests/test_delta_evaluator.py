"""DeltaEvaluator: incremental scoring must be bit-compatible with the full path.

The delta kernel exploits basis linearity — flipping element n moves the
running element sum by ``E[n, new] - E[n, old]`` — so its only source of
disagreement with the full gather is floating-point accumulation.  These
tests pin the contract: within 1e-9 of the full-path score over long
random flip sequences (with the periodic resync bounding drift), bit-exact
rollback after ``revert()``, and probe bookkeeping that matches the
over-the-air measurement model (reverts are free, probes are counted).
"""

import numpy as np
import pytest

from repro.core import ArrayConfiguration, MeanSnrObjective, MinSnrObjective
from repro.experiments import (
    build_large_array_setup,
    build_nlos_setup,
    used_subcarrier_mask,
)

ATOL = 1e-9


def _evaluator(setup, objective=None, mask=None):
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    return basis.evaluator(
        objective if objective is not None else MeanSnrObjective(),
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=mask,
    )


def _random_config(space, rng):
    return ArrayConfiguration(
        tuple(int(rng.integers(0, count)) for count in space.state_counts)
    )


@pytest.mark.parametrize(
    "builder,kwargs",
    [
        (build_nlos_setup, {}),
        (build_large_array_setup, {"num_elements": 48}),
    ],
)
def test_delta_matches_full_over_random_flips(builder, kwargs):
    """200 random single flips: delta score == full re-evaluation (<= 1e-9)."""
    setup = builder(0, **kwargs)
    evaluator = _evaluator(setup, mask=used_subcarrier_mask())
    delta = evaluator.delta()
    space = delta.space
    rng = np.random.default_rng(42)
    assert delta.score == pytest.approx(
        evaluator(delta.configuration), abs=ATOL
    )
    for _ in range(200):
        element = int(rng.integers(0, space.num_elements))
        state = int(rng.integers(0, space.state_counts[element]))
        value = delta.flip(element, state)
        assert value == pytest.approx(evaluator(delta.configuration), abs=ATOL)


def test_delta_matches_full_with_min_snr_objective():
    """The contract holds for any objective, not just the mean."""
    setup = build_nlos_setup(2)
    evaluator = _evaluator(setup, objective=MinSnrObjective())
    delta = evaluator.delta()
    rng = np.random.default_rng(3)
    for _ in range(64):
        element = int(rng.integers(0, delta.space.num_elements))
        state = int(rng.integers(0, delta.space.state_counts[element]))
        value = delta.flip(element, state)
        assert value == pytest.approx(evaluator(delta.configuration), abs=ATOL)


def test_flip_many_matches_full_path():
    """Batched perturbations (the RFocus primitive) track the full path."""
    setup = build_large_array_setup(1, num_elements=40)
    evaluator = _evaluator(setup, mask=used_subcarrier_mask())
    delta = evaluator.delta()
    space = delta.space
    rng = np.random.default_rng(11)
    counts = np.array(space.state_counts)
    for _ in range(32):
        flip_mask = rng.random(space.num_elements) < 0.5
        elements = np.flatnonzero(flip_mask)
        states = rng.integers(0, counts[elements])
        value = delta.flip_many(elements, states)
        assert value == pytest.approx(evaluator(delta.configuration), abs=ATOL)
        delta.revert()


def test_resync_bounds_drift_over_long_sequences():
    """A tiny resync interval forces many recomputes; scores stay exact."""
    setup = build_nlos_setup(0)
    evaluator = _evaluator(setup)
    delta = evaluator.delta(resync_interval=7)
    space = delta.space
    rng = np.random.default_rng(5)
    for _ in range(300):
        element = int(rng.integers(0, space.num_elements))
        state = int(rng.integers(0, space.state_counts[element]))
        value = delta.flip(element, state)
        assert value == pytest.approx(evaluator(delta.configuration), abs=ATOL)


def test_revert_is_bit_exact():
    """revert() restores configuration, sum and score exactly (not approx)."""
    setup = build_large_array_setup(0, num_elements=36)
    evaluator = _evaluator(setup, mask=used_subcarrier_mask())
    rng = np.random.default_rng(9)
    start = _random_config(evaluator.basis.space, rng)
    delta = evaluator.delta(initial=start)
    committed_score = delta.commit()
    committed_sum = delta._sum.copy()
    for _ in range(25):
        element = int(rng.integers(0, delta.space.num_elements))
        state = int(rng.integers(0, delta.space.state_counts[element]))
        delta.flip(element, state)
    restored = delta.revert()
    assert delta.configuration == start
    assert restored == committed_score  # bit-exact, no tolerance
    np.testing.assert_array_equal(delta._sum, committed_sum)


def test_commit_moves_the_revert_point():
    setup = build_nlos_setup(1)
    evaluator = _evaluator(setup)
    delta = evaluator.delta()
    delta.flip(0, 1)
    delta.commit()
    delta.flip(1, 2)
    delta.revert()
    assert delta.configuration.indices[0] == 1
    assert delta.configuration.indices[1] == 0


def test_probe_accounting_matches_measurement_model():
    """Initial score + each flip costs one probe; reverts are free."""
    setup = build_nlos_setup(0)
    delta = _evaluator(setup).delta()
    assert delta.num_scores == 1
    delta.flip(0, 1)
    delta.flip(0, 1)  # no-op state change still re-scores (one sounding)
    delta.revert()
    delta.revert()
    assert delta.num_scores == 3
    assert len(delta.trajectory) == 3
    # trajectory is best-so-far, hence monotone non-decreasing
    assert all(b >= a for a, b in zip(delta.trajectory, delta.trajectory[1:]))


def test_scores_for_element_matches_singleton_flips():
    """The greedy kernel's batched column equals M explicit evaluations."""
    setup = build_large_array_setup(2, num_elements=34)
    evaluator = _evaluator(setup, mask=used_subcarrier_mask())
    delta = evaluator.delta()
    element = 17
    scores = delta.scores_for_element(element)
    base = delta.configuration
    for state, value in enumerate(scores):
        probe = ArrayConfiguration(
            base.indices[:element] + (state,) + base.indices[element + 1 :]
        )
        assert value == pytest.approx(evaluator(probe), abs=ATOL)
    # probing must not move the working configuration
    assert delta.configuration == base


def test_set_configuration_jumps_exactly():
    setup = build_nlos_setup(3)
    evaluator = _evaluator(setup)
    delta = evaluator.delta()
    rng = np.random.default_rng(21)
    target = _random_config(delta.space, rng)
    value = delta.set_configuration(target)
    assert delta.configuration == target
    assert value == pytest.approx(evaluator(target), abs=ATOL)


def test_flip_validates_ranges():
    setup = build_nlos_setup(0)
    delta = _evaluator(setup).delta()
    with pytest.raises(IndexError):
        delta.flip(delta.space.num_elements, 0)
    with pytest.raises(ValueError):
        delta.flip(0, 99)
