"""Tests for repro.em.antennas."""

import math

import pytest

from repro.em.antennas import (
    GAIN_FLOOR_DBI,
    IsotropicAntenna,
    LogPeriodicAntenna,
    OmniAntenna,
    ParabolicAntenna,
    effective_aperture_m2,
)


def test_isotropic_gain_everywhere_zero():
    ant = IsotropicAntenna()
    for angle in (-3.0, 0.0, 1.0, 3.14):
        assert ant.gain_dbi(angle) == 0.0


def test_omni_flat_gain():
    ant = OmniAntenna(peak_gain_dbi=2.0)
    assert ant.gain_dbi(0.0) == 2.0
    assert ant.gain_dbi(2.5) == 2.0


def test_parabolic_boresight_peak():
    ant = ParabolicAntenna()
    assert ant.gain_dbi(0.0) == pytest.approx(14.0)


def test_parabolic_half_power_at_half_beamwidth():
    ant = ParabolicAntenna(peak_gain_dbi=14.0, beamwidth_deg=21.0)
    half = math.radians(21.0) / 2.0
    assert ant.gain_dbi(half) == pytest.approx(11.0)
    assert ant.gain_dbi(-half) == pytest.approx(11.0)


def test_parabolic_floor_far_off_axis():
    ant = ParabolicAntenna()
    assert ant.gain_dbi(math.pi) == GAIN_FLOOR_DBI


def test_boresight_rotates_pattern():
    ant = ParabolicAntenna(boresight_rad=math.pi / 2)
    assert ant.gain_dbi(math.pi / 2) == pytest.approx(14.0)
    assert ant.gain_dbi(0.0) < 0.0


def test_gain_wraps_angle():
    ant = ParabolicAntenna()
    assert ant.gain_dbi(2 * math.pi) == pytest.approx(ant.gain_dbi(0.0))
    assert ant.gain_dbi(-2 * math.pi + 0.1) == pytest.approx(ant.gain_dbi(0.1))


def test_amplitude_gain_is_sqrt_of_linear():
    ant = OmniAntenna(peak_gain_dbi=6.0)
    assert ant.amplitude_gain(0.0) ** 2 == pytest.approx(ant.gain_linear(0.0))


def test_log_periodic_wider_than_dish():
    dish = ParabolicAntenna()
    lp = LogPeriodicAntenna()
    angle = math.radians(40.0)
    # The wider-beam antenna loses less off axis relative to its peak.
    assert (lp.pattern_dbi(0) - lp.pattern_dbi(angle)) < (
        dish.pattern_dbi(0) - dish.pattern_dbi(angle)
    )


def test_invalid_beamwidth_raises():
    with pytest.raises(ValueError):
        ParabolicAntenna(beamwidth_deg=0.0).pattern_dbi(0.1)


def test_effective_aperture():
    # Isotropic antenna: A_e = lambda^2 / 4 pi.
    assert effective_aperture_m2(1.0, 1.0) == pytest.approx(1.0 / (4 * math.pi))
    with pytest.raises(ValueError):
        effective_aperture_m2(-1.0, 1.0)
    with pytest.raises(ValueError):
        effective_aperture_m2(1.0, 0.0)
