"""Tests for repro.em.channel, fading, noise and scene."""

import math

import numpy as np
import pytest

from repro.constants import NUM_SUBCARRIERS, dbm_to_watts, thermal_noise_power_w
from repro.em.channel import (
    Channel,
    coherence_time_s,
    subcarrier_frequencies,
)
from repro.em.fading import (
    TapDelayProfile,
    jakes_doppler_paths,
    rayleigh_paths,
    rician_paths,
)
from repro.em.noise import add_noise, awgn, noise_power_per_subcarrier_w
from repro.em.paths import SignalPath
from repro.em.scene import Scatterer, blocker_between, shoebox_scene
from repro.em.geometry import Point


class TestSubcarrierFrequencies:
    def test_centred_grid(self):
        freqs = subcarrier_frequencies(64, 20e6)
        assert freqs.size == 64
        assert freqs[32] == 0.0  # DC in the middle
        assert freqs[0] == pytest.approx(-10e6)

    def test_spacing(self):
        freqs = subcarrier_frequencies(64, 20e6)
        assert np.allclose(np.diff(freqs), 312.5e3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            subcarrier_frequencies(0, 20e6)
        with pytest.raises(ValueError):
            subcarrier_frequencies(64, 0.0)


class TestChannel:
    def test_cfr_shape(self, two_path_channel):
        assert two_path_channel.cfr().shape == (NUM_SUBCARRIERS,)

    def test_two_path_channel_has_null(self, two_path_channel):
        gains = np.abs(two_path_channel.cfr())
        assert gains.min() < 0.2 * gains.max()

    def test_combined_superposes(self, two_path_channel):
        extra = SignalPath(gain=1e-4, delay_s=40e-9)
        combined = two_path_channel.combined([extra])
        assert len(combined.paths) == len(two_path_channel.paths) + 1
        delta = combined.cfr() - two_path_channel.cfr()
        assert np.allclose(np.abs(delta), 1e-4)

    def test_observe_snr_consistent_with_budget(self):
        # Flat channel with known gain: SNR = P_sc |H|^2 / N_sc.
        channel = Channel([SignalPath(gain=1e-3, delay_s=0.0)])
        obs = channel.observe(tx_power_dbm=15.0, noise_figure_db=7.0)
        p_sc = dbm_to_watts(15.0) / 64
        n_sc = thermal_noise_power_w(20e6 / 64, 7.0)
        expected = 10 * math.log10(p_sc * 1e-6 / n_sc)
        assert obs.snr_db[0] == pytest.approx(expected, abs=1e-6)

    def test_observe_noiseless_is_exact(self, two_path_channel):
        a = two_path_channel.observe()
        b = two_path_channel.observe()
        assert np.array_equal(a.cfr, b.cfr)

    def test_observe_noise_perturbs(self, two_path_channel, rng):
        exact = two_path_channel.observe()
        noisy = two_path_channel.observe(rng=rng)
        assert not np.array_equal(exact.cfr, noisy.cfr)
        # Noise is small at high SNR.
        rel = np.abs(noisy.cfr - exact.cfr) / np.abs(exact.cfr).max()
        assert np.median(rel) < 0.1

    def test_observation_min_mean(self, two_path_channel):
        obs = two_path_channel.observe()
        assert obs.min_snr_db() <= obs.mean_snr_db()
        mask = np.zeros(64, dtype=bool)
        mask[10] = True
        assert obs.min_snr_db(mask) == pytest.approx(obs.snr_db[10])


class TestCoherenceTime:
    def test_paper_anchor_points(self):
        # §2: ~80 ms almost stationary (0.5 mph), ~6 ms at 6 mph.
        assert coherence_time_s(0.5) == pytest.approx(0.089, rel=0.05)
        assert coherence_time_s(6.0) == pytest.approx(0.0074, rel=0.05)

    def test_inverse_in_speed(self):
        assert coherence_time_s(1.0) == pytest.approx(2 * coherence_time_s(2.0))

    def test_invalid(self):
        with pytest.raises(ValueError):
            coherence_time_s(0.0)


class TestFading:
    def test_profile_powers_normalised(self):
        profile = TapDelayProfile(num_taps=8, total_power=2.0)
        assert profile.tap_powers().sum() == pytest.approx(2.0)

    def test_profile_exponential_decay(self):
        powers = TapDelayProfile().tap_powers()
        assert np.all(np.diff(powers) < 0)

    def test_rayleigh_realisation_statistics(self, rng):
        profile = TapDelayProfile(num_taps=4)
        powers = np.zeros(4)
        n = 400
        for _ in range(n):
            paths = rayleigh_paths(profile, rng)
            powers += np.array([p.power for p in paths])
        powers /= n
        assert np.allclose(powers, profile.tap_powers(), rtol=0.25)

    def test_rician_k_factor(self, rng):
        profile = TapDelayProfile(total_power=1.0)
        paths = rician_paths(profile, k_factor_db=10.0, rng=rng)
        los = paths[0]
        assert los.kind == "los"
        assert los.power == pytest.approx(10.0, rel=1e-6)

    def test_jakes_doppler_bounded(self, rng):
        paths = jakes_doppler_paths(TapDelayProfile(), 50.0, rng)
        assert all(abs(p.doppler_hz) <= 50.0 for p in paths)

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            TapDelayProfile(num_taps=0)
        with pytest.raises(ValueError):
            TapDelayProfile(rms_delay_spread_s=-1.0)


class TestNoise:
    def test_awgn_power(self, rng):
        samples = awgn(100_000, 2.0, rng)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_awgn_zero_power(self, rng):
        assert np.allclose(awgn(10, 0.0, rng), 0.0)

    def test_add_noise_achieves_snr(self, rng):
        signal = np.ones(100_000, dtype=complex)
        noisy = add_noise(signal, 10.0, rng)
        noise = noisy - signal
        snr = 1.0 / np.mean(np.abs(noise) ** 2)
        assert 10 * np.log10(snr) == pytest.approx(10.0, abs=0.3)

    def test_noise_power_per_subcarrier(self):
        per_sc = noise_power_per_subcarrier_w(20e6, 64)
        assert per_sc == pytest.approx(thermal_noise_power_w(20e6) / 64)


class TestScene:
    def test_shoebox_walls(self):
        scene = shoebox_scene(8.0, 6.0)
        assert len(scene.walls) == 4

    def test_scatterer_requires_rng(self):
        with pytest.raises(ValueError):
            shoebox_scene(8.0, 6.0, num_scatterers=3)

    def test_scatterer_reflectivity_bounds(self, rng):
        scene = shoebox_scene(8.0, 6.0, num_scatterers=10, rng=rng)
        for s in scene.scatterers:
            assert abs(s.reflectivity) <= 1.0

    def test_scatterer_invalid_reflectivity(self):
        with pytest.raises(ValueError):
            Scatterer(Point(1, 1), reflectivity=1.5 + 0j)

    def test_blocker_perpendicular_and_centred(self):
        tx, rx = Point(0, 0), Point(4, 0)
        blocker = blocker_between(tx, rx, half_width=0.5)
        mid = blocker.segment.midpoint()
        assert mid.x == pytest.approx(2.0)
        assert mid.y == pytest.approx(0.0)
        assert blocker.segment.length() == pytest.approx(1.0)

    def test_blocker_offset(self):
        blocker = blocker_between(Point(0, 0), Point(4, 0), offset=0.25)
        assert blocker.segment.midpoint().x == pytest.approx(3.0)

    def test_blocker_same_points_raises(self):
        with pytest.raises(ValueError):
            blocker_between(Point(1, 1), Point(1, 1))

    def test_with_methods_immutable(self, simple_scene):
        extended = simple_scene.with_scatterers(Scatterer(Point(1, 1)))
        assert len(simple_scene.scatterers) == 0
        assert len(extended.scatterers) == 1
