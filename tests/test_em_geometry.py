"""Tests for repro.em.geometry."""

import math

import numpy as np
import pytest

from repro.em.geometry import (
    Obstacle,
    Point,
    Segment,
    distance,
    mirror_point,
    path_is_blocked,
    points_on_grid,
    rectangle_walls,
    segment_intersection,
    segments_intersect,
)


class TestPoint:
    def test_arithmetic(self):
        a, b = Point(1, 2), Point(3, 5)
        assert (a + b) == Point(4, 7)
        assert (b - a) == Point(2, 3)
        assert 2 * a == Point(2, 4)

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0.0
        assert Point(1, 0).cross(Point(0, 1)) == 1.0

    def test_norm_and_normalized(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)
        unit = Point(3, 4).normalized()
        assert unit.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_angle(self):
        assert Point(1, 0).angle() == pytest.approx(0.0)
        assert Point(0, 1).angle() == pytest.approx(math.pi / 2)
        assert Point(-1, 0).angle() == pytest.approx(math.pi)


class TestSegment:
    def test_length_direction_midpoint(self):
        seg = Segment(Point(0, 0), Point(4, 0))
        assert seg.length() == pytest.approx(4.0)
        assert seg.direction() == Point(1, 0)
        assert seg.midpoint() == Point(2, 0)

    def test_normal_is_perpendicular(self):
        seg = Segment(Point(0, 0), Point(1, 1))
        assert seg.normal().dot(seg.direction()) == pytest.approx(0.0, abs=1e-12)

    def test_point_at(self):
        seg = Segment(Point(0, 0), Point(2, 4))
        assert seg.point_at(0.5) == Point(1, 2)

    def test_contains_point(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.contains_point(Point(5, 0))
        assert not seg.contains_point(Point(5, 1))
        assert not seg.contains_point(Point(11, 0))


class TestMirror:
    def test_mirror_across_x_axis(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        assert mirror_point(Point(2, 3), seg) == Point(2, -3)

    def test_mirror_is_involution(self):
        seg = Segment(Point(0, 1), Point(3, 4))
        p = Point(2.5, -1.2)
        twice = mirror_point(mirror_point(p, seg), seg)
        assert distance(twice, p) < 1e-9

    def test_mirror_point_on_line_is_fixed(self):
        seg = Segment(Point(0, 0), Point(1, 1))
        assert distance(mirror_point(Point(0.5, 0.5), seg), Point(0.5, 0.5)) < 1e-9

    def test_mirror_zero_segment_raises(self):
        with pytest.raises(ValueError):
            mirror_point(Point(1, 1), Segment(Point(0, 0), Point(0, 0)))


class TestIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        hit = segment_intersection(a, b)
        assert hit is not None
        assert distance(hit, Point(1, 1)) < 1e-9

    def test_parallel_no_intersection(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert segment_intersection(a, b) is None

    def test_collinear_overlap(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(2, 0), Point(6, 0))
        assert segments_intersect(a, b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not segments_intersect(a, b)

    def test_touching_endpoints_count(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(1, 0), Point(1, 5))
        assert segments_intersect(a, b)

    def test_near_miss(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(0.5, 0.01), Point(0.5, 1))
        assert not segments_intersect(a, b)


class TestBlockage:
    def test_blocked_path(self):
        wall = Obstacle(Segment(Point(1, -1), Point(1, 1)))
        assert path_is_blocked(Point(0, 0), Point(2, 0), [wall])

    def test_clear_path(self):
        wall = Obstacle(Segment(Point(1, 1), Point(1, 2)))
        assert not path_is_blocked(Point(0, 0), Point(2, 0), [wall])

    def test_endpoint_touch_ignored(self):
        wall = Obstacle(Segment(Point(0, -1), Point(0, 1)))
        assert not path_is_blocked(Point(0, 0), Point(2, 0), [wall])


class TestRectangleWalls:
    def test_four_walls_closed_loop(self):
        walls = rectangle_walls(4.0, 3.0)
        assert len(walls) == 4
        assert walls[0].segment.start == walls[3].segment.end

    def test_perimeter(self):
        walls = rectangle_walls(4.0, 3.0)
        assert sum(w.segment.length() for w in walls) == pytest.approx(14.0)

    def test_material_applied(self):
        walls = rectangle_walls(1.0, 1.0, material="metal")
        assert all(w.material == "metal" for w in walls)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            rectangle_walls(0.0, 3.0)


class TestPointsOnGrid:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(0)
        pts = points_on_grid(5, (0.0, 4.0), (1.0, 3.0), rows=4, cols=4, rng=rng)
        assert len(pts) == 5
        for p in pts:
            assert 0.0 <= p.x <= 4.0
            assert 1.0 <= p.y <= 3.0

    def test_distinct_cells(self):
        rng = np.random.default_rng(0)
        pts = points_on_grid(16, (0.0, 4.0), (0.0, 4.0), rows=4, cols=4, rng=rng)
        assert len({p.as_tuple() for p in pts}) == 16

    def test_too_many_points_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            points_on_grid(17, (0.0, 4.0), (0.0, 4.0), rows=4, cols=4, rng=rng)
