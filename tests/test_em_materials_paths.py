"""Tests for repro.em.materials and repro.em.paths."""

import cmath
import math

import numpy as np
import pytest

from repro.em.materials import MATERIALS, Material, get_material, register_material
from repro.em.paths import SignalPath, paths_to_cfr, paths_to_cir, total_path_power


class TestMaterials:
    def test_default_registry_has_common_materials(self):
        for name in ("metal", "concrete", "drywall", "glass", "wood", "absorber"):
            assert name in MATERIALS

    def test_metal_reflects_more_than_drywall(self):
        assert (
            get_material("metal").reflection_amplitude
            > get_material("drywall").reflection_amplitude
        )

    def test_reflection_coefficient_magnitude(self):
        material = get_material("concrete")
        assert abs(material.reflection_coefficient) == pytest.approx(
            material.reflection_amplitude
        )

    def test_reflection_phase_flip(self):
        gamma = get_material("metal").reflection_coefficient
        assert gamma.real < 0  # ~pi phase

    def test_unknown_material_raises_with_names(self):
        with pytest.raises(KeyError, match="drywall"):
            get_material("unobtainium")

    def test_register_and_lookup(self):
        register_material(Material("test-foam", 0.05))
        assert get_material("test-foam").reflection_amplitude == 0.05

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", 1.5)


class TestSignalPath:
    def test_power(self):
        path = SignalPath(gain=3 + 4j, delay_s=0.0)
        assert path.power == pytest.approx(25.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SignalPath(gain=1.0, delay_s=-1e-9)

    def test_scaled(self):
        path = SignalPath(gain=1 + 0j, delay_s=1e-9, kind="los")
        scaled = path.scaled(2j)
        assert scaled.gain == 2j
        assert scaled.kind == "los"

    def test_delayed(self):
        path = SignalPath(gain=1.0, delay_s=10e-9)
        assert path.delayed(5e-9).delay_s == pytest.approx(15e-9)


class TestPathsToCfr:
    def test_single_path_flat_magnitude(self):
        path = SignalPath(gain=0.5 + 0j, delay_s=50e-9)
        freqs = np.linspace(-10e6, 10e6, 64)
        cfr = paths_to_cfr([path], freqs)
        assert np.allclose(np.abs(cfr), 0.5)

    def test_zero_delay_no_frequency_dependence(self):
        path = SignalPath(gain=1 + 1j, delay_s=0.0)
        freqs = np.linspace(-10e6, 10e6, 16)
        cfr = paths_to_cfr([path], freqs)
        assert np.allclose(cfr, 1 + 1j)

    def test_linearity(self):
        p1 = SignalPath(gain=1.0, delay_s=10e-9)
        p2 = SignalPath(gain=0.3j, delay_s=90e-9)
        freqs = np.linspace(-10e6, 10e6, 32)
        assert np.allclose(
            paths_to_cfr([p1, p2], freqs),
            paths_to_cfr([p1], freqs) + paths_to_cfr([p2], freqs),
        )

    def test_two_equal_paths_produce_null(self):
        # Opposite gains at f=0 with delay difference: null where phase
        # difference is a multiple of 2 pi.
        delta = 100e-9
        p1 = SignalPath(gain=1.0, delay_s=0.0)
        p2 = SignalPath(gain=-1.0, delay_s=delta)
        cfr0 = paths_to_cfr([p1, p2], np.array([0.0]))
        assert abs(cfr0[0]) < 1e-12

    def test_doppler_rotates_with_time(self):
        path = SignalPath(gain=1.0, delay_s=0.0, doppler_hz=100.0)
        freqs = np.array([0.0])
        h0 = paths_to_cfr([path], freqs, time_s=0.0)[0]
        h1 = paths_to_cfr([path], freqs, time_s=2.5e-3)[0]
        expected_rotation = cmath.exp(2j * math.pi * 100.0 * 2.5e-3)
        assert h1 / h0 == pytest.approx(expected_rotation)


class TestPathsToCir:
    def test_taps_placed_at_rounded_delay(self):
        fs = 20e6
        path = SignalPath(gain=1.0, delay_s=3 / fs)
        cir = paths_to_cir([path], fs, 8)
        assert cir[3] == pytest.approx(1.0)
        assert np.sum(np.abs(cir)) == pytest.approx(1.0)

    def test_power_conserved_for_overflow_delay(self):
        fs = 20e6
        path = SignalPath(gain=2.0, delay_s=1.0)  # absurdly long
        cir = paths_to_cir([path], fs, 4)
        assert cir[-1] == pytest.approx(2.0)

    def test_coincident_paths_sum(self):
        fs = 20e6
        paths = [SignalPath(gain=1.0, delay_s=0.0), SignalPath(gain=-1.0, delay_s=0.0)]
        cir = paths_to_cir(paths, fs, 4)
        assert np.allclose(cir, 0.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            paths_to_cir([], 0.0, 4)
        with pytest.raises(ValueError):
            paths_to_cir([], 20e6, 0)


def test_total_path_power():
    paths = [SignalPath(gain=1.0, delay_s=0.0), SignalPath(gain=2.0, delay_s=1e-9)]
    assert total_path_power(paths) == pytest.approx(5.0)
