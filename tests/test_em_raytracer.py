"""Tests for repro.em.raytracer."""

import math

import pytest

from repro.constants import SPEED_OF_LIGHT, WAVELENGTH_M
from repro.em.antennas import OmniAntenna, ParabolicAntenna
from repro.em.geometry import Obstacle, Point, Segment, Wall
from repro.em.raytracer import (
    MIN_HOP_DISTANCE_M,
    RayTracer,
    carrier_phase,
    free_space_amplitude,
    two_hop_gain,
)
from repro.em.scene import Scatterer, Scene, blocker_between, shoebox_scene


class TestFreeSpace:
    def test_amplitude_inverse_distance(self):
        a1 = free_space_amplitude(1.0, WAVELENGTH_M)
        a2 = free_space_amplitude(2.0, WAVELENGTH_M)
        assert a1 / a2 == pytest.approx(2.0)

    def test_friis_value(self):
        # lambda/(4 pi d) at 1 m, 2.462 GHz ~ 9.69e-3.
        assert free_space_amplitude(1.0, WAVELENGTH_M) == pytest.approx(9.69e-3, rel=1e-2)

    def test_near_field_clamp(self):
        assert free_space_amplitude(0.0, WAVELENGTH_M) == free_space_amplitude(
            MIN_HOP_DISTANCE_M, WAVELENGTH_M
        )

    def test_carrier_phase_periodic(self):
        assert carrier_phase(WAVELENGTH_M, WAVELENGTH_M) == pytest.approx(
            carrier_phase(0.0, WAVELENGTH_M)
        )

    def test_half_wavelength_flips_sign(self):
        assert carrier_phase(WAVELENGTH_M / 2, WAVELENGTH_M).real == pytest.approx(-1.0)


class TestTwoHopGain:
    def test_matches_backscatter_budget(self):
        gain = two_hop_gain(2.0, 3.0, WAVELENGTH_M)
        expected = free_space_amplitude(2.0, WAVELENGTH_M) * free_space_amplitude(
            3.0, WAVELENGTH_M
        )
        assert abs(gain) == pytest.approx(expected)

    def test_reflectivity_scales(self):
        full = two_hop_gain(1.0, 1.0, WAVELENGTH_M)
        half = two_hop_gain(1.0, 1.0, WAVELENGTH_M, reflectivity=0.5 + 0j)
        assert abs(half) == pytest.approx(abs(full) / 2)


class TestLineOfSight:
    def test_los_present_in_empty_room(self, simple_scene):
        tracer = RayTracer(simple_scene)
        path = tracer.line_of_sight_path(Point(2, 3), Point(6, 3))
        assert path is not None
        assert path.kind == "los"
        assert path.delay_s == pytest.approx(4.0 / SPEED_OF_LIGHT)

    def test_los_blocked_by_obstacle(self, simple_scene):
        scene = simple_scene.with_obstacles(blocker_between(Point(2, 3), Point(6, 3)))
        tracer = RayTracer(scene)
        assert tracer.line_of_sight_path(Point(2, 3), Point(6, 3)) is None

    def test_los_gain_matches_friis(self, simple_scene):
        tracer = RayTracer(simple_scene)
        path = tracer.line_of_sight_path(Point(2, 3), Point(6, 3))
        assert abs(path.gain) == pytest.approx(
            free_space_amplitude(4.0, tracer.wavelength_m)
        )

    def test_aod_aoa_point_at_each_other(self, simple_scene):
        tracer = RayTracer(simple_scene)
        path = tracer.line_of_sight_path(Point(2, 3), Point(6, 3))
        assert path.aod_rad == pytest.approx(0.0)
        assert abs(path.aoa_rad) == pytest.approx(math.pi)


class TestWallReflections:
    def test_single_bounce_count_in_rectangle(self, simple_scene):
        tracer = RayTracer(simple_scene, max_bounces=1)
        paths = tracer.single_bounce_paths(Point(2, 3), Point(6, 3))
        # All four walls give a specular bounce for an interior link.
        assert len(paths) == 4

    def test_image_method_delay(self, simple_scene):
        # Bottom wall (y=0): path length = |(2,3) -> image (6,-3)| = sqrt(16+36).
        tracer = RayTracer(simple_scene, max_bounces=1)
        paths = tracer.single_bounce_paths(Point(2, 3), Point(6, 3))
        expected = math.sqrt(4.0**2 + 6.0**2) / SPEED_OF_LIGHT
        delays = [p.delay_s for p in paths]
        assert any(d == pytest.approx(expected, rel=1e-9) for d in delays)

    def test_reflection_attenuated_by_material(self):
        metal = shoebox_scene(8.0, 6.0, material="metal")
        dry = shoebox_scene(8.0, 6.0, material="drywall")
        p_metal = RayTracer(metal, max_bounces=1).single_bounce_paths(
            Point(2, 3), Point(6, 3)
        )
        p_dry = RayTracer(dry, max_bounces=1).single_bounce_paths(
            Point(2, 3), Point(6, 3)
        )
        assert abs(p_metal[0].gain) > abs(p_dry[0].gain)

    def test_double_bounce_weaker_than_single(self, simple_scene):
        tracer = RayTracer(simple_scene, max_bounces=2)
        single = tracer.single_bounce_paths(Point(2, 3), Point(6, 3))
        double = tracer.double_bounce_paths(Point(2, 3), Point(6, 3))
        assert double  # exist
        assert max(p.power for p in double) < max(p.power for p in single)

    def test_double_bounce_hops_tagged(self, simple_scene):
        tracer = RayTracer(simple_scene, max_bounces=2)
        for path in tracer.double_bounce_paths(Point(2, 3), Point(6, 3)):
            assert path.hops == 2

    def test_obstacle_blocks_reflection(self, simple_scene):
        # A big obstacle just below the link blocks the floor bounce; the
        # symmetric ceiling bounce (same delay at mid-height) survives, so
        # exactly one path remains at that delay instead of two.
        obstacle = Obstacle(Segment(Point(1.0, 1.5), Point(7.0, 1.5)))
        blocked = simple_scene.with_obstacles(obstacle)
        floor_delay = math.sqrt(16 + 36) / SPEED_OF_LIGHT

        def count_at_delay(scene):
            paths = RayTracer(scene, max_bounces=1).single_bounce_paths(
                Point(2, 3), Point(6, 3)
            )
            return sum(
                1 for p in paths if p.delay_s == pytest.approx(floor_delay, rel=1e-6)
            )

        assert count_at_delay(simple_scene) == 2
        assert count_at_delay(blocked) == 1

    def test_interior_wall_blocks_and_reflects(self):
        walls = list(shoebox_scene(8.0, 6.0).walls)
        walls.append(Wall(Segment(Point(4.0, 2.0), Point(4.0, 4.0)), material="metal"))
        scene = Scene(walls=tuple(walls))
        tracer = RayTracer(scene)
        # Interior wall blocks the direct path.
        assert not tracer.has_line_of_sight(Point(2, 3), Point(6, 3))


class TestScattererAndRelay:
    def test_scatterer_path_created(self, simple_scene):
        scene = simple_scene.with_scatterers(Scatterer(Point(4, 4.5)))
        tracer = RayTracer(scene)
        paths = tracer.scatterer_paths(Point(2, 3), Point(6, 3))
        assert len(paths) == 1
        assert paths[0].kind == "scatterer"

    def test_scatterer_gain_dbi_applied(self, simple_scene):
        low = simple_scene.with_scatterers(Scatterer(Point(4, 4.5), gain_dbi=0.0))
        high = simple_scene.with_scatterers(Scatterer(Point(4, 4.5), gain_dbi=10.0))
        p_low = RayTracer(low).scatterer_paths(Point(2, 3), Point(6, 3))[0]
        p_high = RayTracer(high).scatterer_paths(Point(2, 3), Point(6, 3))[0]
        # 10 dBi applied on both hops -> 20 dB power difference.
        ratio_db = 10 * math.log10(p_high.power / p_low.power)
        assert ratio_db == pytest.approx(20.0, abs=0.1)

    def test_relay_path_blocked_leg_returns_none(self, simple_scene):
        scene = simple_scene.with_obstacles(
            Obstacle(Segment(Point(3.0, 3.4), Point(3.0, 4.2)))
        )
        tracer = RayTracer(scene)
        assert (
            tracer.relay_path(Point(2, 3), Point(4, 2.5), Point(6, 3)) is not None
        )  # legs pass below the obstacle
        assert (
            tracer.relay_path(Point(2, 3), Point(4, 4.5), Point(6, 3)) is None
        )  # first leg crosses it (y = 3.75 at x = 3)

    def test_relay_extra_delay_and_phase(self, simple_scene):
        tracer = RayTracer(simple_scene)
        base = tracer.relay_path(Point(2, 3), Point(4, 4.5), Point(6, 3))
        shifted = tracer.relay_path(
            Point(2, 3),
            Point(4, 4.5),
            Point(6, 3),
            extra_delay_s=10e-9,
            extra_phase_rad=math.pi / 2,
        )
        assert shifted.delay_s == pytest.approx(base.delay_s + 10e-9)
        assert shifted.gain / base.gain == pytest.approx(1j)

    def test_relay_directional_pattern(self, simple_scene):
        tracer = RayTracer(simple_scene)
        dish_toward_tx = ParabolicAntenna(
            boresight_rad=(Point(2, 3) - Point(4, 4.5)).angle()
        )
        path = tracer.relay_path(
            Point(2, 3),
            Point(4, 4.5),
            Point(6, 3),
            relay_antenna_in=dish_toward_tx,
            relay_antenna_out=dish_toward_tx,
        )
        omni = tracer.relay_path(Point(2, 3), Point(4, 4.5), Point(6, 3))
        # In-beam toward TX boosts the incident hop, off-beam toward RX
        # attenuates the departure hop far more.
        assert path.power < omni.power


class TestTrace:
    def test_trace_includes_all_kinds(self, nlos_scene):
        tracer = RayTracer(nlos_scene)
        paths = tracer.trace(Point(2, 3), Point(6, 3), OmniAntenna(), OmniAntenna())
        kinds = {p.kind for p in paths}
        assert "wall-reflection" in kinds
        assert "los" not in kinds  # blocked

    def test_trace_respects_max_bounces(self, simple_scene):
        t0 = RayTracer(simple_scene, max_bounces=0)
        t1 = RayTracer(simple_scene, max_bounces=1)
        t2 = RayTracer(simple_scene, max_bounces=2)
        n0 = len(t0.trace(Point(2, 3), Point(6, 3)))
        n1 = len(t1.trace(Point(2, 3), Point(6, 3)))
        n2 = len(t2.trace(Point(2, 3), Point(6, 3)))
        assert n0 < n1 < n2

    def test_invalid_max_bounces(self, simple_scene):
        with pytest.raises(ValueError):
            RayTracer(simple_scene, max_bounces=3)
