"""Tests for repro.experiments — scenario builders and figure drivers.

Figure drivers run at reduced repetition counts here; the full-size runs
live in benchmarks/.
"""

import numpy as np
import pytest

from repro.em.channel import Channel
from repro.experiments import (
    FIG5_PLACEMENT_SEED,
    build_harmonization_setup,
    build_los_setup,
    build_mimo_setup,
    build_nlos_setup,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_los_study,
    used_subcarrier_mask,
)


class TestScenarioBuilders:
    def test_nlos_setup_blocks_los(self):
        setup = build_nlos_setup(0)
        tracer = setup.testbed.tracer
        assert not tracer.has_line_of_sight(
            setup.tx_device.position, setup.rx_device.position
        )

    def test_los_setup_keeps_los(self):
        setup = build_los_setup(0)
        tracer = setup.testbed.tracer
        assert tracer.has_line_of_sight(
            setup.tx_device.position, setup.rx_device.position
        )

    def test_prototype_space_is_64(self):
        setup = build_nlos_setup(0)
        assert setup.testbed.array.configuration_space().size == 64

    def test_placements_differ(self):
        a = build_nlos_setup(0)
        b = build_nlos_setup(1)
        positions_a = [e.position.as_tuple() for e in a.array.elements]
        positions_b = [e.position.as_tuple() for e in b.array.elements]
        assert positions_a != positions_b

    def test_same_seed_reproducible(self):
        a = build_nlos_setup(3)
        b = build_nlos_setup(3)
        assert [e.position.as_tuple() for e in a.array.elements] == [
            e.position.as_tuple() for e in b.array.elements
        ]

    def test_harmonization_uses_two_4phase_elements(self):
        setup = build_harmonization_setup(0)
        assert setup.array.num_elements == 2
        space = setup.array.configuration_space()
        assert space.size == 16
        # No absorptive load among the states (§3.2.2).
        for element in setup.array.elements:
            assert not any(s.is_terminated for s in element.states)
        assert setup.tx_device.model == "USRP N210"

    def test_mimo_setup_has_2x2_endpoints(self):
        setup = build_mimo_setup(0)
        assert setup.tx_device.num_chains == 2
        assert setup.rx_device.num_chains == 2
        assert setup.tx_device.model == "USRP X310"

    def test_mimo_elements_colinear_lambda_spaced(self):
        from repro.constants import WAVELENGTH_M

        setup = build_mimo_setup(0)
        ys = {e.position.y for e in setup.array.elements}
        assert len(ys) == 1  # co-linear
        xs = sorted(e.position.x for e in setup.array.elements)
        assert xs[1] - xs[0] == pytest.approx(WAVELENGTH_M)

    def test_facing_panel_produces_specular_path(self):
        setup = build_nlos_setup(0)
        env = setup.testbed.environment_paths(setup.tx_device, setup.rx_device)
        # The panel supplies a long-delay component (> 50 ns).
        assert any(p.delay_s > 50e-9 and p.kind == "wall-reflection" for p in env)

    def test_ambient_channel_is_frequency_selective(self):
        setup = build_nlos_setup(FIG5_PLACEMENT_SEED)
        env = setup.testbed.environment_paths(setup.tx_device, setup.rx_device)
        snr = Channel(env).observe().snr_db[used_subcarrier_mask()]
        assert snr.max() - snr.min() > 5.0

    def test_used_mask_is_52(self):
        assert used_subcarrier_mask().sum() == 52


class TestFigureDrivers:
    def test_fig4_small(self):
        result = run_fig4(num_placements=2, repetitions=2)
        assert len(result.placements) == 2
        placement = result.placements[0]
        assert placement.snr_low.shape == (52,)
        assert placement.mean_gap_db > 0
        assert placement.label_low.startswith("(")
        assert result.largest_mean_change_db >= result.placements[0].mean_gap_db

    def test_fig4_nlos_effect_is_large(self):
        result = run_fig4(num_placements=2, repetitions=3)
        # PRESS must move at least one subcarrier by >5 dB in NLoS.
        assert result.largest_mean_change_db > 5.0

    def test_fig5_movements(self):
        result = run_fig5(repetitions=3)
        assert len(result.movements_per_rep) == 3
        assert result.max_movement >= 0
        assert 0.0 <= result.fraction_moving_more_than(0) <= 1.0
        curves = result.ccdf_curves()
        for _x, y in curves:
            assert np.all(np.diff(y) <= 1e-12)  # CCDF non-increasing

    def test_fig5_nulls_move_multiple_subcarriers(self):
        result = run_fig5(repetitions=4)
        assert result.max_movement >= 3

    def test_fig6_claims_structure(self):
        result = run_fig6(repetitions=3)
        assert 0.0 <= result.fraction_pairs_10db_change <= 1.0
        assert 0.0 <= result.fraction_configs_below_20db <= 1.0
        assert len(result.min_snr_per_trial) == 3
        x, y = result.left_ccdf()
        assert x.size == result.min_snr_change_pairs.size

    def test_fig7_opposite_selectivity(self):
        result = run_fig7(max_seeds=6)
        assert result.snr_a.shape == (52,)
        assert result.total_contrast_db > 0
        # With enough seeds the scan should find an opposite pair.
        assert result.is_opposite

    def test_fig8_structure(self):
        result = run_fig8(measurements_per_config=5)
        assert result.condition_db.shape == (64, 52)
        assert np.all(result.condition_db >= 0)
        assert result.median_gap_db > 0
        assert result.best_configuration != result.worst_configuration

    def test_los_study_shape_holds(self):
        result = run_los_study(repetitions=2)
        # The paper's core §3 finding: passive PRESS barely touches LoS
        # links but dominates NLoS links.
        assert result.los_swing_db < 2.0
        assert result.nlos_swing_db > 5.0
        assert result.passive_best_for_nlos

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_fig4(num_placements=0)
        with pytest.raises(ValueError):
            run_fig8(measurements_per_config=0)
        with pytest.raises(ValueError):
            run_fig7(max_seeds=0)
