"""Unit tests for telemetry export, SLOs, and benchmark drift detection."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.bench_diff import (
    compare_benchmarks,
    flatten_json,
    parse_metric_tolerances,
)
from repro.obs.export import (
    TelemetryStreamer,
    derive_rates,
    histogram_quantile,
    read_telemetry,
    render_openmetrics,
    summarize_histogram,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.slo import (
    LatencyObjective,
    RateObjective,
    SloEngine,
    SloPolicy,
    evaluate_load_result,
    parse_slo,
)


def _registry_with_latencies(values, name="serve.evaluate.request_latency_s"):
    registry = MetricsRegistry()
    histogram = registry.histogram(name, lo=1e-6, hi=1e3, bins_per_decade=9)
    for value in values:
        histogram.observe(value)
    return registry


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------


def test_histogram_quantile_empty_and_bounds():
    registry = _registry_with_latencies([])
    state = registry.snapshot().histograms["serve.evaluate.request_latency_s"]
    assert math.isnan(histogram_quantile(state, 0.5))
    with pytest.raises(ValueError):
        histogram_quantile(state, 1.5)


def test_histogram_quantile_single_value_is_exact():
    registry = _registry_with_latencies([0.25])
    state = registry.snapshot().histograms["serve.evaluate.request_latency_s"]
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram_quantile(state, q) == pytest.approx(0.25)


def test_histogram_quantile_tracks_exact_within_bin_resolution():
    values = [0.001 * (i + 1) for i in range(200)]
    registry = _registry_with_latencies(values)
    state = registry.snapshot().histograms["serve.evaluate.request_latency_s"]
    for q in (0.5, 0.95, 0.99):
        exact = values[max(0, math.ceil(q * len(values)) - 1)]
        estimate = histogram_quantile(state, q)
        # 9 bins/decade -> each bin spans ~29%, so estimates stay close.
        assert estimate == pytest.approx(exact, rel=0.30)
        assert state.min <= estimate <= state.max


def test_histogram_quantile_monotone_in_q():
    registry = _registry_with_latencies([0.01, 0.05, 0.2, 0.9, 3.0])
    state = registry.snapshot().histograms["serve.evaluate.request_latency_s"]
    estimates = [histogram_quantile(state, q) for q in (0.1, 0.5, 0.9, 1.0)]
    assert estimates == sorted(estimates)


def test_summarize_histogram_digest():
    registry = _registry_with_latencies([0.1, 0.2, 0.3])
    state = registry.snapshot().histograms["serve.evaluate.request_latency_s"]
    digest = summarize_histogram(state)
    assert digest["count"] == 3
    assert digest["sum"] == pytest.approx(0.6)
    assert digest["min"] == pytest.approx(0.1)
    assert digest["max"] == pytest.approx(0.3)
    assert {"p50", "p95", "p99"} <= set(digest)
    empty = summarize_histogram(
        _registry_with_latencies([], name="x.wait_s")
        .snapshot()
        .histograms["x.wait_s"]
    )
    assert empty["count"] == 0
    assert empty["min"] is None and empty["p50"] is None


# ---------------------------------------------------------------------------
# OpenMetrics rendering
# ---------------------------------------------------------------------------


def test_render_openmetrics_families_and_eof():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(5)
    registry.gauge("serve.pending").set(2.0)
    registry.histogram(
        "serve.wait_s", lo=0.1, hi=10.0, bins_per_decade=1
    ).observe(0.5)
    text = render_openmetrics(registry.snapshot())
    assert "# TYPE serve_requests counter" in text
    assert "serve_requests_total 5" in text
    assert "serve_pending 2" in text
    assert "# TYPE serve_wait_s histogram" in text
    assert 'serve_wait_s_bucket{le="+Inf"} 1' in text
    assert "serve_wait_s_count 1" in text
    assert text.endswith("# EOF\n")


def test_render_openmetrics_is_canonical():
    registry = MetricsRegistry()
    registry.counter("b.second").inc()
    registry.counter("a.first").inc()
    text = render_openmetrics(registry.snapshot())
    assert text.index("a_first_total") < text.index("b_second_total")
    assert text == render_openmetrics(registry.snapshot())


def test_render_openmetrics_cumulative_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "x.wait_s", lo=1.0, hi=100.0, bins_per_decade=1
    )
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    text = render_openmetrics(registry.snapshot())
    buckets = [
        line for line in text.splitlines() if line.startswith("x_wait_s_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == 4  # +Inf covers everything


# ---------------------------------------------------------------------------
# Telemetry streaming
# ---------------------------------------------------------------------------


def test_telemetry_streamer_roundtrip(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.histogram("serve.wait_s").observe(0.1)
    with TelemetryStreamer(str(path), registry=registry) as streamer:
        first = streamer.write_sample()
        registry.counter("serve.requests").inc(2)
        second = streamer.write_sample()
    assert first["seq"] == 0 and second["seq"] == 1
    assert second["uptime_s"] >= first["uptime_s"]
    samples = read_telemetry(str(path))
    assert [s["seq"] for s in samples] == [0, 1]
    assert samples[1]["counters"]["serve.requests"] == 5
    assert samples[0]["histograms"]["serve.wait_s"]["count"] == 1


def test_read_telemetry_skips_torn_lines_and_missing_file(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    path.write_text(
        json.dumps({"seq": 0, "uptime_s": 0.0, "counters": {}})
        + "\n"
        + '{"seq": 1, "upti'  # torn mid-write
    )
    samples = read_telemetry(str(path))
    assert [s["seq"] for s in samples] == [0]
    assert read_telemetry(str(tmp_path / "absent.jsonl")) == []


def test_derive_rates_consecutive_and_lifetime():
    first = {
        "uptime_s": 1.0,
        "counters": {
            "serve.requests": 10,
            "serve.batches": 2,
            "serve.batched_requests": 8,
            "serve.session_hits": 6,
            "serve.session_misses": 2,
        },
        "gauges": {"serve.pending": 1.0, "serve.sessions": 2.0},
    }
    second = {
        "uptime_s": 3.0,
        "counters": {
            "serve.requests": 30,
            "serve.rejections": 4,
            "serve.batches": 6,
            "serve.batched_requests": 24,
            "serve.session_hits": 14,
            "serve.session_misses": 2,
        },
        "gauges": {"serve.pending": 5.0, "serve.sessions": 3.0},
    }
    rates = derive_rates(first, second)
    assert rates["elapsed_s"] == pytest.approx(2.0)
    assert rates["requests_per_s"] == pytest.approx(10.0)
    assert rates["rejections_per_s"] == pytest.approx(2.0)
    assert rates["batch_efficiency"] == pytest.approx(4.0)  # 16 reqs / 4 batches
    assert rates["session_hit_rate"] == pytest.approx(1.0)  # 8 hits / 8 lookups
    assert rates["queue_depth"] == 5.0
    lifetime = derive_rates(None, second)
    assert lifetime["requests_per_s"] == pytest.approx(10.0)
    assert lifetime["elapsed_s"] == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# SLO parsing and objectives
# ---------------------------------------------------------------------------


def test_parse_slo_latency_and_expansion():
    objective = parse_slo("p95:serve.evaluate.request_latency_s<0.05")
    assert isinstance(objective, LatencyObjective)
    assert objective.quantile == pytest.approx(0.95)
    assert objective.threshold_s == pytest.approx(0.05)
    bare = parse_slo("p99:evaluate<=0.1")
    assert bare.metric == "serve.evaluate.request_latency_s"
    assert bare.quantile == pytest.approx(0.99)


def test_parse_slo_rate():
    objective = parse_slo("rate:serve.rejections/serve.requests<0.01")
    assert isinstance(objective, RateObjective)
    assert objective.numerator == "serve.rejections"
    assert objective.budget == pytest.approx(0.01)


@pytest.mark.parametrize(
    "spec",
    ["", "p95:evaluate", "latency<0.1", "rate:a/b", "p95:Evaluate<0.1", "p:x<1"],
)
def test_parse_slo_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        parse_slo(spec)


def test_latency_objective_pass_fail_and_vacuous():
    registry = _registry_with_latencies([0.01] * 95 + [0.5] * 5)
    snapshot = registry.snapshot()
    loose = LatencyObjective(
        "serve.evaluate.request_latency_s", quantile=0.9, threshold_s=0.1
    )
    tight = LatencyObjective(
        "serve.evaluate.request_latency_s", quantile=0.99, threshold_s=0.1
    )
    assert loose.evaluate(snapshot).ok
    status = tight.evaluate(snapshot)
    assert not status.ok
    assert status.burn_rate > 1.0
    vacuous = LatencyObjective("no.such_s", quantile=0.5, threshold_s=1.0)
    status = vacuous.evaluate(snapshot)
    assert status.ok and math.isnan(status.value) and status.burn_rate == 0.0


def test_latency_objective_exact_samples():
    objective = LatencyObjective("x", quantile=0.9, threshold_s=0.5)
    latencies = [0.1] * 9 + [1.0]
    status = objective.evaluate_latencies(latencies)
    assert status.value == pytest.approx(0.1)  # nearest-rank p90 of 10 samples
    assert status.ok
    assert status.burn_rate == pytest.approx(1.0)  # 10% over / 10% budget
    assert objective.evaluate_latencies([math.nan]).ok  # untimed -> vacuous


def test_rate_objective_burn_and_vacuous():
    objective = RateObjective("serve.rejections", "serve.requests", budget=0.1)
    status = objective.evaluate_counts(3, 10)
    assert not status.ok
    assert status.value == pytest.approx(0.3)
    assert status.burn_rate == pytest.approx(3.0)
    assert objective.evaluate_counts(0, 0).ok  # no traffic, no violation
    zero_budget = RateObjective("a", "b", budget=0.0)
    assert zero_budget.evaluate_counts(1, 10).burn_rate == math.inf


def test_objective_validation():
    with pytest.raises(ValueError):
        LatencyObjective("x", quantile=1.0, threshold_s=0.1)
    with pytest.raises(ValueError):
        LatencyObjective("x", quantile=0.5, threshold_s=0.0)
    with pytest.raises(ValueError):
        RateObjective("a", "b", budget=1.5)


# ---------------------------------------------------------------------------
# Policies and the rolling-window engine
# ---------------------------------------------------------------------------


def test_policy_from_specs_and_violations():
    policy = SloPolicy.from_specs(
        ["p95:evaluate<0.05", "rate:serve.rejections/serve.requests<0.5"]
    )
    assert len(policy) == 2
    registry = _registry_with_latencies([1.0] * 10)
    registry.counter("serve.requests").inc(10)
    violations = policy.violations(registry.snapshot())
    assert [v.kind for v in violations] == ["latency"]
    assert "VIOLATED" in violations[0].describe()


def test_slo_engine_window_judges_recent_behaviour():
    policy = SloPolicy.from_specs(
        ["rate:serve.rejections/serve.requests<0.1"]
    )
    engine = SloEngine(policy, window_s=10.0)
    assert engine.evaluate()[0].ok  # empty window is vacuous

    registry = MetricsRegistry()
    requests = registry.counter("serve.requests")
    rejections = registry.counter("serve.rejections")
    # A bad first minute: 50% rejections.
    requests.inc(100)
    rejections.inc(50)
    engine.observe(0.0, registry.snapshot())
    assert not engine.evaluate()[0].ok
    # Then a clean stretch; old samples age out of the window.
    for t in (5.0, 12.0, 20.0):
        requests.inc(100)
        engine.observe(t, registry.snapshot())
    status = engine.evaluate()[0]
    assert status.ok  # window covers only the clean delta
    assert status.value == pytest.approx(0.0)


def test_evaluate_load_result_maps_counts():
    policy = SloPolicy.from_specs(
        [
            "p50:evaluate<1.0",
            "rate:serve.rejections/serve.requests<0.2",
            "rate:serve.errors/serve.requests<0.01",
        ]
    )
    statuses = evaluate_load_result(
        policy, [0.1, 0.2, math.nan], completed=8, rejected=1, failed=1
    )
    by_kind = {s.objective: s for s in statuses}
    assert by_kind["p50:serve.evaluate.request_latency_s<1"].ok
    assert by_kind["rate:serve.rejections/serve.requests<0.2"].ok
    assert not by_kind["rate:serve.errors/serve.requests<0.01"].ok


# ---------------------------------------------------------------------------
# Benchmark drift detection
# ---------------------------------------------------------------------------


def test_flatten_json_dicts_and_lists():
    flat = flatten_json({"a": {"b": 1}, "edges": [10, 20], "name": "x"})
    assert flat == {"a.b": 1, "edges.0": 10, "edges.1": 20, "name": "x"}


def test_compare_benchmarks_numeric_tolerance():
    baseline = {"throughput": 100.0, "count": 5}
    ok = compare_benchmarks(baseline, {"throughput": 120.0, "count": 5})
    assert ok == []
    findings = compare_benchmarks(
        baseline, {"throughput": 300.0, "count": 5}, file="BENCH_x.json"
    )
    assert [f.kind for f in findings] == ["numeric"]
    assert "BENCH_x.json:throughput" in findings[0].describe()


def test_compare_benchmarks_structure_and_keys_only():
    baseline = {"a": 1, "b": 2}
    findings = compare_benchmarks(baseline, {"a": 1, "c": 3})
    assert {(f.kind, f.key) for f in findings} == {("added", "c"), ("missing", "b")}
    # keys_only ignores even wild numeric drift.
    assert compare_benchmarks({"a": 1}, {"a": 1000}, keys_only=True) == []
    assert {
        f.kind for f in compare_benchmarks({"a": 1}, {"b": 1}, keys_only=True)
    } == {"added", "missing"}


def test_compare_benchmarks_value_mismatch_and_overrides():
    findings = compare_benchmarks({"name": "x"}, {"name": "y"})
    assert [f.kind for f in findings] == ["value"]
    # Per-metric override loosens one key without touching the rest.
    overrides = parse_metric_tolerances(["*throughput*=5.0"])
    findings = compare_benchmarks(
        {"throughput": 10.0, "count": 10},
        {"throughput": 55.0, "count": 100},
        metric_tolerances=overrides,
    )
    assert [f.key for f in findings] == ["count"]


def test_parse_metric_tolerances_rejects_bad_specs():
    assert parse_metric_tolerances(["a=0.5", "b.*=1.0"]) == {
        "a": 0.5,
        "b.*": 1.0,
    }
    with pytest.raises(ValueError):
        parse_metric_tolerances(["no-equals"])
    with pytest.raises(ValueError):
        parse_metric_tolerances(["=0.5"])
