"""Tests for repro.core.faults and repro.experiments.coverage."""

import numpy as np
import pytest

from repro.core import (
    ArrayConfiguration,
    ExhaustiveSearch,
    detect_unresponsive_elements,
    with_faults,
)
from repro.experiments import (
    build_nlos_setup,
    run_coverage,
    used_subcarrier_mask,
)
from repro.sdr.testbed import Testbed


@pytest.fixture(scope="module")
def setup():
    return build_nlos_setup(2)


def _cfr_measure(setup, array):
    testbed = Testbed(scene=setup.testbed.scene, array=array)
    mask = used_subcarrier_mask()

    def measure(configuration):
        return testbed.channel(
            setup.tx_device, setup.rx_device, configuration
        ).cfr()[mask]

    return testbed, measure


class TestFaultInjection:
    def test_stuck_element_ignores_switching(self, setup):
        faulty = with_faults(setup.array, stuck={0: 2})
        _, measure = _cfr_measure(setup, faulty)
        a = measure(ArrayConfiguration((0, 0, 0)))
        b = measure(ArrayConfiguration((3, 0, 0)))
        assert np.allclose(a, b)

    def test_stuck_element_still_reflects(self, setup):
        faulty = with_faults(setup.array, stuck={0: 0})
        _, measure = _cfr_measure(setup, faulty)
        healthy_tb, healthy_measure = _cfr_measure(setup, setup.array)
        assert np.allclose(
            measure(ArrayConfiguration((0, 1, 2))),
            healthy_measure(ArrayConfiguration((0, 1, 2))),
        )

    def test_dead_element_never_reflects(self, setup):
        faulty = with_faults(setup.array, dead=[1])
        _, measure = _cfr_measure(setup, faulty)
        a = measure(ArrayConfiguration((0, 0, 0)))
        b = measure(ArrayConfiguration((0, 2, 0)))
        assert np.allclose(a, b)

    def test_space_size_preserved(self, setup):
        faulty = with_faults(setup.array, stuck={0: 1}, dead=[2])
        assert (
            faulty.configuration_space().size
            == setup.array.configuration_space().size
        )

    def test_validation(self, setup):
        with pytest.raises(ValueError):
            with_faults(setup.array, stuck={9: 0})
        with pytest.raises(ValueError):
            with_faults(setup.array, stuck={0: 0}, dead=[0])

    def test_search_degrades_gracefully(self, setup):
        mask = used_subcarrier_mask()

        def best_score(array):
            testbed = Testbed(scene=setup.testbed.scene, array=array)

            def score(configuration):
                return float(
                    testbed.measure_csi(
                        setup.tx_device, setup.rx_device, configuration
                    ).snr_db[mask].min()
                )

            return ExhaustiveSearch().search(
                array.configuration_space(), score
            ).best_score

        healthy = best_score(setup.array)
        one_dead = best_score(with_faults(setup.array, dead=[0]))
        # Losing an element can only reduce the achievable optimum, but the
        # search must still find a working configuration (not collapse).
        assert one_dead <= healthy + 1e-9
        assert one_dead > healthy - 15.0


class TestFaultDetection:
    def test_detects_stuck_and_dead(self, setup):
        faulty = with_faults(setup.array, stuck={0: 2}, dead=[1])
        _, measure = _cfr_measure(setup, faulty)
        assert detect_unresponsive_elements(faulty, measure) == [0, 1]

    def test_healthy_array_clean(self, setup):
        _, measure = _cfr_measure(setup, setup.array)
        assert detect_unresponsive_elements(setup.array, measure) == []

    def test_threshold_validation(self, setup):
        _, measure = _cfr_measure(setup, setup.array)
        with pytest.raises(ValueError):
            detect_unresponsive_elements(setup.array, measure, threshold=0.0)


class TestCoverage:
    @pytest.fixture(scope="class")
    def coverage(self):
        return run_coverage(grid_shape=(3, 4))

    def test_shapes(self, coverage):
        assert coverage.baseline_db.shape == (3, 4)
        assert coverage.per_position_db.shape == (3, 4)
        assert coverage.joint_db.shape == (3, 4)

    def test_ordering_invariant(self, coverage):
        # Per-position optimum >= joint >= ... and both >= can't be below
        # baseline at the baseline's own configuration.
        assert np.all(coverage.per_position_db >= coverage.joint_db - 1e-9)
        assert coverage.worst_db("joint") >= coverage.worst_db("baseline") - 1e-9

    def test_press_improves_worst_spot(self, coverage):
        assert coverage.worst_db("joint") > coverage.worst_db("baseline")

    def test_fraction_below_monotone_in_threshold(self, coverage):
        low = coverage.fraction_below(5.0)
        high = coverage.fraction_below(40.0)
        assert low <= high

    def test_validation(self):
        with pytest.raises(ValueError):
            run_coverage(grid_shape=(0, 3))
