"""Integration tests: full stacks wired together end to end."""

import pytest

from repro.control.links import wired_bus_link
from repro.control.protocol import ControlPlane
from repro.core import (
    ExhaustiveSearch,
    GreedyCoordinateDescent,
    MinSnrObjective,
    PressController,
    ThroughputObjective,
)
from repro.core.configuration import ArrayConfiguration
from repro.experiments import (
    StudyConfig,
    build_nlos_setup,
    used_subcarrier_mask,
)
from repro.phy import FrameFormat, QAM16, get_code, select_mcs, simulate_link


class TestControllerOverTestbed:
    """The §2 measure -> search -> actuate loop over the simulated lab."""

    @pytest.fixture
    def setup(self):
        return build_nlos_setup(0)

    def _controller(self, setup, objective):
        mask = used_subcarrier_mask()

        def measure(configuration):
            obs = setup.testbed.measure_csi(
                setup.tx_device, setup.rx_device, configuration
            )
            return obs.snr_db[mask]

        return PressController(setup.array, measure, objective)

    def test_optimizer_beats_default_configuration(self, setup):
        controller = self._controller(setup, MinSnrObjective())
        baseline = controller.score(ArrayConfiguration((0, 0, 0)))
        decision = controller.optimize(searcher=ExhaustiveSearch())
        assert decision.search.best_score >= baseline

    def test_greedy_approaches_exhaustive(self, setup):
        controller = self._controller(setup, MinSnrObjective())
        exhaustive = controller.optimize(searcher=ExhaustiveSearch())
        greedy = controller.optimize(searcher=GreedyCoordinateDescent(restarts=2))
        assert greedy.search.num_evaluations < exhaustive.search.num_evaluations
        assert greedy.search.best_score >= exhaustive.search.best_score - 3.0

    def test_throughput_objective_improves_rate(self, setup):
        controller = self._controller(setup, ThroughputObjective())
        mask = used_subcarrier_mask()
        worst_rate = min(
            ThroughputObjective()(
                setup.testbed.measure_csi(
                    setup.tx_device, setup.rx_device, config
                ).snr_db[mask]
            )
            for config in setup.array.configuration_space().all_configurations()
        )
        decision = controller.optimize(searcher=ExhaustiveSearch())
        assert decision.search.best_score >= worst_rate


class TestPhyOverScenario:
    """Frames decoded through the ray-traced channel, before and after PRESS."""

    def test_press_configuration_changes_selected_mcs(self):
        # Lower TX power so the link straddles MCS switching points; at the
        # default 15 dBm every configuration saturates the 54 Mbps ladder.
        setup = build_nlos_setup(0, StudyConfig(tx_power_dbm=-5.0))
        mask = used_subcarrier_mask()
        rates = []
        for config in setup.array.configuration_space().all_configurations():
            obs = setup.testbed.measure_csi(setup.tx_device, setup.rx_device, config)
            rates.append(select_mcs(obs.snr_db[mask]).data_rate_mbps)
        # The configuration space must span more than one MCS choice —
        # otherwise PRESS could not change throughput.
        assert len(set(rates)) > 1

    def test_frame_decodes_over_composed_channel(self, rng):
        setup = build_nlos_setup(1)
        channel = setup.testbed.channel(
            setup.tx_device, setup.rx_device, ArrayConfiguration((0, 0, 0))
        )
        result = simulate_link(
            channel,
            FrameFormat(QAM16, get_code("1/2")),
            num_info_bits=400,
            rng=rng,
        )
        assert result.bit_errors == 0


class TestControlPlaneIntegration:
    def test_actuate_then_measure(self):
        setup = build_nlos_setup(0)
        plane = ControlPlane(link=wired_bus_link(), num_elements=3)
        target = ArrayConfiguration((1, 2, 3))
        result = plane.actuate(target)
        assert result.success
        applied = ArrayConfiguration(plane.current_states)
        assert applied == target
        obs = setup.testbed.measure_csi(setup.tx_device, setup.rx_device, applied)
        assert obs.snr_db.shape == (64,)

    def test_full_loop_with_latency_accounting(self):
        from repro.core.scheduler import TimingModel

        setup = build_nlos_setup(2)
        plane = ControlPlane(link=wired_bus_link(), num_elements=3)
        actuation = plane.actuate(ArrayConfiguration((0, 0, 0))).elapsed_s
        mask = used_subcarrier_mask()

        def measure(configuration):
            plane.actuate(configuration)
            obs = setup.testbed.measure_csi(
                setup.tx_device, setup.rx_device, configuration
            )
            return obs.snr_db[mask]

        controller = PressController(
            setup.array,
            measure,
            MinSnrObjective(),
            timing=TimingModel(actuation_latency_s=actuation),
        )
        decision = controller.optimize(speed_mph=0.5)
        # The wired control plane is fast enough to finish a round within
        # the stationary coherence window.
        assert decision.within_coherence
        # Apply the winner (the search memoises, so the last configuration
        # actuated during the sweep need not be the best one).
        plane.actuate(decision.configuration)
        assert ArrayConfiguration(plane.current_states) == decision.configuration
