"""Multi-link delta scoring, joint aggregates, and multi-tenant admission.

The multi-link scorer's contract is the single-link DeltaEvaluator's,
lifted: its aggregate must match naively re-evaluating every link's full
path within 1e-9 — exhaustively verified over the whole 3-element space —
and its probe accounting must follow the joint measurement model (one
joint probe sounds every link once).  On top sit the strategy invariants
(agile >= static in quality, static <= agile in switching load) and the
admission controller's escalation ladder (joint -> re-cluster -> reject).
"""

import numpy as np
import pytest

from repro.core import (
    ConfigurationSpace,
    BasisLink,
    ExhaustiveSearch,
    GreedyCoordinateDescent,
    LexicographicAggregate,
    LinkObjective,
    MeanSnrObjective,
    MinSnrObjective,
    MultiLinkDeltaEvaluator,
    MultiTenantController,
    RFocusMajoritySearch,
    WeightedMeanAggregate,
    WorstLinkAggregate,
    compare_strategies,
    joint_aggregate,
    optimize_hybrid,
    optimize_joint,
    optimize_per_link,
)
from repro.em.geometry import Point
from repro.experiments import build_large_array_setup, build_nlos_setup, used_subcarrier_mask
from repro.obs.metrics import global_registry

ATOL = 1e-9


def _basis_links(setup, num_links=2, weights=None, objective=None):
    """BasisLinks for receivers spread around the scenario's RX."""
    rx0 = setup.rx_device.position
    points = [
        Point(rx0.x + 0.3 * index, rx0.y + 0.2 * index)
        for index in range(num_links)
    ]
    bases = setup.testbed.bases_for_points(
        setup.tx_device, points, setup.rx_device.chains[0].antenna
    )
    if weights is None:
        weights = [1.0] * num_links
    return [
        BasisLink(
            name=f"L{index}",
            evaluator=basis.evaluator(
                objective if objective is not None else MeanSnrObjective(),
                tx_power_dbm=setup.tx_device.tx_power_dbm,
                noise_figure_db=setup.rx_device.noise_figure_db,
                mask=used_subcarrier_mask(),
            ),
            weight=weight,
        )
        for index, (basis, weight) in enumerate(zip(bases, weights))
    ]


class TestMultiLinkDeltaEvaluator:
    def test_parity_exhaustive_over_whole_space(self):
        """Aggregate == naive weighted mean of full-path per-link scores,
        for every configuration of the 3-element space."""
        setup = build_nlos_setup(0)
        links = _basis_links(setup, num_links=2, weights=[1.0, 2.0])
        weights = np.array([1.0, 2.0])
        evaluator = MultiLinkDeltaEvaluator(
            [link.evaluator for link in links], weights=weights
        )
        for config in evaluator.space.all_configurations():
            value = evaluator.set_configuration(config)
            naive = np.array([link.evaluator(config) for link in links])
            expected = float(np.dot(weights, naive) / weights.sum())
            assert value == pytest.approx(expected, abs=ATOL)
            np.testing.assert_allclose(
                evaluator.per_link_scores(), naive, atol=ATOL
            )

    def test_parity_with_worst_link_aggregate(self):
        setup = build_nlos_setup(1)
        links = _basis_links(setup, num_links=3)
        evaluator = MultiLinkDeltaEvaluator(
            [link.evaluator for link in links], aggregate=WorstLinkAggregate()
        )
        rng = np.random.default_rng(7)
        space = evaluator.space
        for _ in range(50):
            element = int(rng.integers(0, space.num_elements))
            state = int(rng.integers(0, space.state_counts[element]))
            value = evaluator.flip(element, state)
            naive = min(
                link.evaluator(evaluator.configuration) for link in links
            )
            assert value == pytest.approx(naive, abs=ATOL)

    def test_scores_for_element_matches_explicit_probes(self):
        setup = build_nlos_setup(2)
        links = _basis_links(setup, num_links=2, weights=[3.0, 1.0])
        weights = np.array([3.0, 1.0])
        evaluator = MultiLinkDeltaEvaluator(
            [link.evaluator for link in links], weights=weights
        )
        base = evaluator.configuration
        scores = evaluator.scores_for_element(1)
        for state, value in enumerate(scores):
            probe = base.with_element_state(1, state)
            naive = np.array([link.evaluator(probe) for link in links])
            expected = float(np.dot(weights, naive) / weights.sum())
            assert value == pytest.approx(expected, abs=ATOL)
        assert evaluator.configuration == base

    def test_joint_probe_accounting(self):
        """One joint probe per flip/jump; reverts free; column probes M-1."""
        setup = build_nlos_setup(0)
        links = _basis_links(setup, num_links=2)
        evaluator = MultiLinkDeltaEvaluator([link.evaluator for link in links])
        assert evaluator.num_scores == 1  # initial configuration
        evaluator.flip(0, 1)
        evaluator.revert()
        assert evaluator.num_scores == 2
        states = evaluator.space.state_counts[0]
        evaluator.scores_for_element(0)
        assert evaluator.num_scores == 2 + (states - 1)
        # trajectory is best-so-far, hence monotone non-decreasing
        assert all(
            b >= a
            for a, b in zip(evaluator.trajectory, evaluator.trajectory[1:])
        )

    def test_revert_and_commit_track_all_links(self):
        setup = build_nlos_setup(3)
        links = _basis_links(setup, num_links=2)
        evaluator = MultiLinkDeltaEvaluator([link.evaluator for link in links])
        committed = evaluator.commit()
        evaluator.flip(0, 2)
        evaluator.flip(1, 3)
        restored = evaluator.revert()
        assert restored == committed
        naive = np.array(
            [link.evaluator(evaluator.configuration) for link in links]
        )
        np.testing.assert_allclose(
            evaluator.per_link_scores(), naive, atol=ATOL
        )

    def test_validation(self):
        setup = build_nlos_setup(0)
        links = _basis_links(setup, num_links=2)
        evaluators = [link.evaluator for link in links]
        with pytest.raises(ValueError):
            MultiLinkDeltaEvaluator([])
        with pytest.raises(ValueError):
            MultiLinkDeltaEvaluator(evaluators, weights=np.array([1.0]))
        with pytest.raises(ValueError):
            MultiLinkDeltaEvaluator(evaluators, weights=np.array([1.0, -1.0]))


class TestAggregates:
    def test_weighted_mean(self):
        scores = np.array([10.0, 20.0])
        weights = np.array([1.0, 3.0])
        assert WeightedMeanAggregate()(scores, weights) == pytest.approx(17.5)

    def test_weighted_mean_rejects_zero_total(self):
        with pytest.raises(ValueError):
            WeightedMeanAggregate()(np.array([1.0]), np.array([0.0]))

    def test_worst_link_ignores_weights(self):
        scores = np.array([10.0, 3.0, 20.0])
        weights = np.array([0.1, 100.0, 0.1])
        assert WorstLinkAggregate()(scores, weights) == pytest.approx(3.0)

    def test_lexicographic_prefers_better_worst_link(self):
        agg = LexicographicAggregate()
        weights = np.ones(2)
        fair = agg(np.array([10.0, 11.0]), weights)
        starved = agg(np.array([5.0, 100.0]), weights)
        assert fair > starved

    def test_lexicographic_breaks_ties_on_next_worst(self):
        agg = LexicographicAggregate()
        weights = np.ones(2)
        assert agg(np.array([10.0, 12.0]), weights) > agg(
            np.array([10.0, 11.0]), weights
        )

    def test_lexicographic_epsilon_validated(self):
        with pytest.raises(ValueError):
            LexicographicAggregate(epsilon=0.0)
        with pytest.raises(ValueError):
            LexicographicAggregate(epsilon=1.0)

    def test_factory_names(self):
        assert isinstance(joint_aggregate("mean"), WeightedMeanAggregate)
        assert isinstance(joint_aggregate("worst"), WorstLinkAggregate)
        assert isinstance(
            joint_aggregate("lexicographic"), LexicographicAggregate
        )
        with pytest.raises(ValueError):
            joint_aggregate("fairest")


class TestBasisLinkStrategies:
    def test_invariants_on_exhaustive_search(self):
        """Agile beats static in quality; static beats agile in switching."""
        setup = build_nlos_setup(0)
        links = _basis_links(setup, num_links=3)
        results = compare_strategies(links, searcher=ExhaustiveSearch())
        per_link, joint = results["per-link"], results["joint"]
        hybrid = results["hybrid"]
        assert (
            per_link.aggregate_score(links)
            >= joint.aggregate_score(links) - ATOL
        )
        assert joint.aggregate_score(links) >= joint.worst_link_score() - ATOL
        assert (
            joint.num_distinct_configurations
            <= hybrid.num_distinct_configurations
            <= per_link.num_distinct_configurations
        )

    def test_joint_exhaustive_matches_brute_force(self):
        setup = build_nlos_setup(1)
        links = _basis_links(setup, num_links=2, weights=[1.0, 2.0])
        joint = optimize_joint(links, searcher=ExhaustiveSearch())
        weights = np.array([1.0, 2.0])
        space = links[0].evaluator.basis.space
        best = max(
            float(
                np.dot(weights, [link.evaluator(c) for link in links])
                / weights.sum()
            )
            for c in space.all_configurations()
        )
        assert joint.aggregate_score(links) == pytest.approx(best, abs=ATOL)

    @pytest.mark.parametrize(
        "searcher",
        [
            GreedyCoordinateDescent(max_sweeps=2, seed=0),
            RFocusMajoritySearch(seed=0),
        ],
    )
    def test_delta_path_runs_on_unenumerable_array(self, searcher):
        """Joint optimisation on 2^64 configurations — impossible to
        enumerate, routine for the delta path."""
        setup = build_large_array_setup(0, num_elements=64)
        links = _basis_links(setup, num_links=2)
        joint = optimize_joint(links, searcher=searcher)
        assert joint.num_distinct_configurations == 1
        assert joint.num_measurements > 0
        # joint probes sound every link: the count is a multiple of L
        assert joint.num_measurements % len(links) == 0
        hybrid = optimize_hybrid(links, searcher=searcher)
        assert hybrid.num_distinct_configurations <= len(links)

    def test_delta_and_exhaustive_joint_agree_on_small_space(self):
        """On an enumerable space the delta-powered greedy search must
        report scores consistent with full-path re-evaluation."""
        setup = build_nlos_setup(2)
        links = _basis_links(setup, num_links=2)
        joint = optimize_joint(
            links, searcher=GreedyCoordinateDescent(max_sweeps=4, seed=0)
        )
        config = joint.assignments[links[0].name]
        for link in links:
            assert joint.per_link_scores[link.name] == pytest.approx(
                link.evaluator(config), abs=ATOL
            )

    def test_mismatched_spaces_rejected(self):
        setup_small = build_nlos_setup(0)
        setup_large = build_large_array_setup(0, num_elements=16)
        links = [
            _basis_links(setup_small, num_links=1)[0],
            BasisLink(
                name="other",
                evaluator=_basis_links(setup_large, num_links=1)[0].evaluator,
            ),
        ]
        with pytest.raises(ValueError):
            optimize_joint(links, searcher=ExhaustiveSearch())


def _table_links(space, seeds=(0, 1), spread=1.0):
    links = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        table = spread * rng.standard_normal((space.size, 8)) + 20.0

        def measure(config, table=table):
            return table[space.index_of(config)]

        links.append(
            LinkObjective(
                name=f"T{seed}", measure=measure, objective=MinSnrObjective()
            )
        )
    return links


class TestMultiTenantController:
    @pytest.fixture
    def space(self):
        return ConfigurationSpace((4, 4, 4))

    def test_admits_compatible_links_jointly(self, space):
        controller = MultiTenantController(space=space)
        links = _table_links(space, seeds=(0, 1))
        for link in links:
            decision = controller.admit(link, snr_floor_db=0.0)
            assert decision.admitted
            assert decision.strategy == "joint"
            assert not decision.reclustered
            assert decision.violations == ()
        assert controller.num_links == 2
        assert controller.snapshot().strategy == "joint"

    def test_conflict_escalates_to_recluster(self, space):
        """When the shared optimum starves a floor, the hybrid fallback
        (distinct configurations) is what admits the newcomer."""
        controller = MultiTenantController(space=space, tolerance=0.0)
        links = _table_links(space, seeds=(0, 1), spread=8.0)
        solo = [
            ExhaustiveSearch().search(space, link.score).best_score
            for link in links
        ]
        first = controller.admit(links[0], snr_floor_db=solo[0] - 0.01)
        assert first.admitted and not first.reclustered
        second = controller.admit(links[1], snr_floor_db=solo[1] - 0.01)
        assert second.admitted
        assert second.reclustered
        assert second.strategy == "hybrid"
        assert second.result.num_distinct_configurations == 2

    def test_impossible_floor_rejected_and_incumbents_untouched(self, space):
        controller = MultiTenantController(space=space)
        links = _table_links(space, seeds=(0, 1))
        controller.admit(links[0], snr_floor_db=0.0)
        plan_before = controller.result
        measurements_before = controller.total_measurements
        decision = controller.admit(links[1], snr_floor_db=1e6)
        assert not decision.admitted
        assert links[1].name in decision.violations
        assert controller.num_links == 1
        assert controller.result is plan_before
        # the failed attempt's soundings still happened and are charged
        assert controller.total_measurements > measurements_before

    def test_duplicate_name_rejected(self, space):
        controller = MultiTenantController(space=space)
        links = _table_links(space, seeds=(0,))
        controller.admit(links[0], snr_floor_db=0.0)
        with pytest.raises(ValueError):
            controller.admit(links[0], snr_floor_db=0.0)

    def test_release_reoptimises_remaining(self, space):
        controller = MultiTenantController(space=space)
        links = _table_links(space, seeds=(0, 1))
        for link in links:
            controller.admit(link, snr_floor_db=0.0)
        plan = controller.release(links[0].name)
        assert controller.num_links == 1
        assert plan is not None
        assert set(plan.per_link_scores) == {links[1].name}
        assert controller.release(links[1].name) is None
        assert controller.num_links == 0
        with pytest.raises(KeyError):
            controller.release("nobody")

    def test_obs_counters_follow_decisions(self, space):
        before = global_registry().snapshot()
        controller = MultiTenantController(space=space)
        links = _table_links(space, seeds=(0, 1, 2))
        controller.admit(links[0], snr_floor_db=0.0)
        controller.admit(links[1], snr_floor_db=1e6)  # rejected
        controller.admit(links[2], snr_floor_db=0.0)
        controller.release(links[0].name)
        delta = global_registry().snapshot().delta(before)
        assert delta.counters["joint.admissions"] == 2
        assert delta.counters["joint.rejections"] == 1
        assert delta.counters["joint.releases"] == 1
        assert delta.counters["joint.optimizations"] >= 4
        assert global_registry().gauge("joint.active_links").value == 1

    def test_works_with_basis_links_and_delta_searcher(self):
        """Admission control at wall scale: the whole ladder runs on the
        multi-link delta path."""
        setup = build_large_array_setup(0, num_elements=48)
        links = _basis_links(setup, num_links=2)
        controller = MultiTenantController(
            searcher=GreedyCoordinateDescent(max_sweeps=2, seed=0)
        )
        for link in links:
            decision = controller.admit(link, snr_floor_db=-1e3)
            assert decision.admitted
        snapshot = controller.snapshot()
        assert snapshot.num_distinct_configurations == 1
        assert snapshot.total_measurements > 0


class TestMultiUserExperiment:
    def test_bit_identical_across_jobs(self):
        from repro.experiments import run_multi_user

        serial = run_multi_user(
            link_counts=(2,), num_elements=32, jobs=1
        )
        fanned = run_multi_user(
            link_counts=(2,), num_elements=32, jobs=2
        )
        assert serial == fanned
        assert serial.cell(2, "joint").num_distinct_configurations == 1
        assert serial.admission[0].num_links == 2

    def test_validation(self):
        from repro.experiments import run_multi_user

        with pytest.raises(ValueError):
            run_multi_user(link_counts=())
        with pytest.raises(ValueError):
            run_multi_user(link_counts=(2,), strategies=("static",))
        with pytest.raises(ValueError):
            run_multi_user(link_counts=(2,), searcher="oracle")
