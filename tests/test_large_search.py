"""Scalable searchers and the wall-sized array path.

Pins the behaviours that let search scale past exhaustive enumeration:
chunked basis tracing agrees with the scalar path, the enumeration guard
raises (with a pointer to the scalable searchers) instead of OOMing,
scheduler selection routes huge spaces to RFocus-style search, searchers
are deterministic at a fixed seed, and the large-array experiment is
bit-identical at any worker count.
"""

import numpy as np
import pytest

from repro.core import (
    GreedyCoordinateDescent,
    MeanSnrObjective,
    RFocusMajoritySearch,
    SearchSpaceTooLarge,
    exhaustive_argmax,
    pick_searcher,
)
from repro.core.basis import MAX_ENUMERABLE_CONFIGS, ChannelBasis
from repro.core.configuration import ConfigurationSpace
from repro.experiments import (
    build_large_array_setup,
    build_nlos_setup,
    run_large_array,
    used_subcarrier_mask,
)
from repro.sdr.testbed import LARGE_ARRAY_THRESHOLD

N_SMALL = 40  # >= LARGE_ARRAY_THRESHOLD so the chunked trace path runs


def _basis(setup):
    return setup.testbed.basis_for(setup.tx_device, setup.rx_device)


def _search_kwargs(setup):
    return {
        "tx_power_dbm": setup.tx_device.tx_power_dbm,
        "noise_figure_db": setup.rx_device.noise_figure_db,
        "mask": used_subcarrier_mask(),
    }


def test_chunked_trace_matches_scalar_trace():
    """trace_chunked is the same basis as trace, to machine precision."""
    setup = build_large_array_setup(0, num_elements=N_SMALL)
    assert N_SMALL >= LARGE_ARRAY_THRESHOLD
    testbed = setup.testbed
    chunked = _basis(setup)  # routed through trace_chunked by element count
    tx = setup.tx_device.chains[0]
    rx = setup.rx_device.chains[0]
    scalar = ChannelBasis.trace(
        setup.array,
        tx.position,
        rx.position,
        testbed.tracer,
        tx_antenna=tx.antenna,
        rx_antenna=rx.antenna,
        num_subcarriers=testbed.num_subcarriers,
        bandwidth_hz=testbed.bandwidth_hz,
        environment_paths=testbed.environment_paths(
            setup.tx_device, setup.rx_device
        ),
    )
    np.testing.assert_allclose(
        chunked.state_tensor, scalar.state_tensor, rtol=0.0, atol=1e-12
    )
    np.testing.assert_allclose(
        chunked.ambient_cfr(), scalar.ambient_cfr(), rtol=0.0, atol=1e-12
    )


def test_enumeration_guard_names_the_scalable_searchers():
    """Huge spaces raise a diagnosis, not an OOM, on every enumeration route."""
    setup = build_large_array_setup(0, num_elements=64)
    basis = _basis(setup)
    assert basis.space.size > MAX_ENUMERABLE_CONFIGS
    with pytest.raises(SearchSpaceTooLarge) as err:
        basis.evaluator(MeanSnrObjective()).argmax()
    message = str(err.value)
    assert "64 elements" in message
    assert "GreedyCoordinateDescent" in message
    assert "RFocusMajoritySearch" in message
    with pytest.raises(SearchSpaceTooLarge):
        setup.testbed.sweep(setup.tx_device, setup.rx_device, repetitions=1)


def test_pick_searcher_routes_large_spaces_to_rfocus():
    space = ConfigurationSpace(state_counts=(4,) * 1000)
    searcher = pick_searcher(space, budget=100, seed=3)
    assert isinstance(searcher, RFocusMajoritySearch)
    assert searcher.seed == 3
    # spent budget stays within what was granted
    assert searcher.rounds * (searcher.perturbations + 1) <= 100


@pytest.mark.parametrize(
    "searcher_factory",
    [
        lambda seed: GreedyCoordinateDescent(seed=seed),
        lambda seed: RFocusMajoritySearch(seed=seed),
    ],
)
def test_searchers_deterministic_at_fixed_seed(searcher_factory):
    setup = build_large_array_setup(1, num_elements=N_SMALL)
    basis = _basis(setup)
    kwargs = _search_kwargs(setup)
    first = searcher_factory(7).search_basis(basis, MeanSnrObjective(), **kwargs)
    second = searcher_factory(7).search_basis(basis, MeanSnrObjective(), **kwargs)
    assert first.best == second.best
    assert first.best_score == second.best_score
    assert first.num_evaluations == second.num_evaluations
    assert first.trajectory == second.trajectory


@pytest.mark.parametrize(
    "searcher",
    [GreedyCoordinateDescent(seed=0), RFocusMajoritySearch(seed=0)],
)
def test_scalable_searchers_near_exhaustive_on_small_array(searcher):
    """At N=3 both scalable searchers land within 1 dB of the true optimum."""
    setup = build_nlos_setup(0)
    basis = _basis(setup)
    kwargs = _search_kwargs(setup)
    best, best_score = exhaustive_argmax(basis, MeanSnrObjective(), **kwargs)
    result = searcher.search_basis(basis, MeanSnrObjective(), **kwargs)
    assert result.best_score <= best_score + 1e-9
    assert result.best_score >= best_score - 1.0


def test_delta_routed_search_improves_on_baseline():
    """On a wall-sized array the searchers find real gain over all-zeros."""
    setup = build_large_array_setup(0, num_elements=64)
    basis = _basis(setup)
    kwargs = _search_kwargs(setup)
    evaluator = basis.evaluator(MeanSnrObjective(), **kwargs)
    baseline = evaluator.delta().score
    result = GreedyCoordinateDescent(seed=0).search_basis(
        basis, MeanSnrObjective(), **kwargs
    )
    assert result.best_score > baseline
    assert result.best_score == pytest.approx(
        evaluator(result.best), abs=1e-9
    )  # reported score is reproducible from the returned configuration


def test_run_large_array_parallel_matches_serial():
    """jobs=1 and jobs=4 produce bit-identical cells."""
    serial = run_large_array(
        element_counts=(N_SMALL,), searchers=("greedy", "rfocus"), jobs=1
    )
    parallel = run_large_array(
        element_counts=(N_SMALL,), searchers=("greedy", "rfocus"), jobs=4
    )
    assert serial == parallel
    for cell in serial.cells:
        assert cell.soundings >= 1
        assert len(cell.trajectory_soundings) == len(cell.trajectory_gain_db)
        assert cell.trajectory_soundings[-1] == cell.soundings
        # best-so-far curve is monotone non-decreasing
        gains = cell.trajectory_gain_db
        assert all(b >= a for a, b in zip(gains, gains[1:]))
