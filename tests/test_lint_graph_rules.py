"""Graph-aware rule suite (RPL101-RPL105).

Every rule gets positive and negative single-file fixtures plus at least
one *cross-module* fixture: a violation spread over two files that the
single-file pass provably cannot catch — asserted by running the same
project with ``graph=False`` and checking the finding disappears.
"""

from repro.analysis.linter import lint_project, run_lint_source

SERVE_PATH = "src/repro/serve/handler.py"
LIB_PATH = "src/repro/em/example.py"


def only(findings, rule):
    return [f for f in findings if f.rule == rule]


def lint_tree(tmp_path, files, rule, graph=True):
    """Write ``rel_path -> source`` files, lint them, filter to ``rule``."""
    paths = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        paths.append(str(target))
    run = lint_project(paths, graph=graph, select=[rule])
    return run.findings


# ----------------------------------------------------------------------
# RPL101: blocking calls reachable from async serve code
# ----------------------------------------------------------------------
def test_rpl101_flags_direct_sleep_in_async_serve_handler():
    source = (
        "import time\n\n"
        "async def handle(request):\n"
        "    time.sleep(0.1)\n"
        "    return request\n"
    )
    findings = only(run_lint_source(source, SERVE_PATH), "RPL101")
    assert len(findings) == 1 and "time.sleep" in findings[0].message


def test_rpl101_flags_blocking_two_helpers_below_the_coroutine():
    source = (
        "import time\n\n"
        "def low():\n"
        "    time.sleep(1)\n\n"
        "def mid():\n"
        "    low()\n\n"
        "async def handle(request):\n"
        "    mid()\n"
    )
    findings = only(run_lint_source(source, SERVE_PATH), "RPL101")
    assert len(findings) == 1
    assert "mid" in findings[0].message and "low" in findings[0].message


def test_rpl101_flags_sync_future_wait_but_not_str_join():
    source = (
        "async def handle(future, parts):\n"
        "    text = ', '.join(parts)\n"
        "    value = future.result()\n"
        "    return text, value\n"
    )
    findings = only(run_lint_source(source, SERVE_PATH), "RPL101")
    assert len(findings) == 1 and ".result()" in findings[0].message


def test_rpl101_allows_blocking_work_behind_run_in_executor():
    source = (
        "import time\n\n"
        "def crunch(task):\n"
        "    time.sleep(1)\n"
        "    return task\n\n"
        "async def handle(loop, pool, task):\n"
        "    return await loop.run_in_executor(pool, crunch, task)\n"
    )
    assert only(run_lint_source(source, SERVE_PATH), "RPL101") == []


def test_rpl101_ignores_async_outside_serve():
    source = "import time\n\nasync def helper():\n    time.sleep(1)\n"
    assert only(run_lint_source(source, LIB_PATH), "RPL101") == []


def test_rpl101_cross_module_requires_the_graph(tmp_path):
    files = {
        "src/repro/em/slowio.py": (
            "def load_profile(path):\n"
            "    return open(path).read()\n"
        ),
        "src/repro/serve/handler.py": (
            "from repro.em.slowio import load_profile\n\n"
            "async def handle(request):\n"
            "    return load_profile(request)\n"
        ),
    }
    with_graph = lint_tree(tmp_path, files, "RPL101", graph=True)
    assert len(with_graph) == 1
    assert "load_profile" in with_graph[0].message
    assert with_graph[0].path.endswith("serve/handler.py")
    assert lint_tree(tmp_path, files, "RPL101", graph=False) == []


# ----------------------------------------------------------------------
# RPL102: coroutines / futures created but never awaited or stored
# ----------------------------------------------------------------------
def test_rpl102_flags_bare_coroutine_call():
    source = (
        "async def notify(event):\n"
        "    return event\n\n"
        "async def handle(event):\n"
        "    notify(event)\n"
    )
    findings = only(run_lint_source(source, SERVE_PATH), "RPL102")
    assert len(findings) == 1 and "never awaited" in findings[0].message


def test_rpl102_allows_awaited_stored_and_returned_coroutines():
    source = (
        "async def notify(event):\n"
        "    return event\n\n"
        "async def handle(event):\n"
        "    await notify(event)\n"
        "    handle_two = notify(event)\n"
        "    return handle_two\n"
    )
    assert only(run_lint_source(source, SERVE_PATH), "RPL102") == []


def test_rpl102_flags_dropped_task_and_submit_future():
    source = (
        "import asyncio\n\n"
        "async def run(pool, work):\n"
        "    asyncio.create_task(work())\n"
        "    pool.submit(work)\n"
    )
    findings = only(run_lint_source(source, SERVE_PATH), "RPL102")
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "task handle dropped" in messages and ".submit()" in messages


def test_rpl102_cross_module_requires_the_graph(tmp_path):
    files = {
        "src/repro/serve/events.py": (
            "async def notify(event):\n"
            "    return event\n"
        ),
        "src/repro/serve/handler.py": (
            "from repro.serve.events import notify\n\n"
            "async def handle(event):\n"
            "    notify(event)\n"
        ),
    }
    with_graph = lint_tree(tmp_path, files, "RPL102", graph=True)
    assert len(with_graph) == 1 and "notify" in with_graph[0].message
    assert lint_tree(tmp_path, files, "RPL102", graph=False) == []


# ----------------------------------------------------------------------
# RPL103: pool-submitted functions must be picklable, global-clean
# ----------------------------------------------------------------------
def test_rpl103_flags_lambda_and_bound_method_submission():
    source = (
        "def run(pool, obj):\n"
        "    pool.submit(lambda: 1)\n"
        "    pool.submit(obj)\n\n"
        "class Driver:\n"
        "    def kick(self, pool):\n"
        "        pool.submit(self.step)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL103")
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "lambda" in messages and "bound method" in messages


def test_rpl103_flags_nested_function_submission():
    source = (
        "def run(pool, grid):\n"
        "    def task(cell):\n"
        "        return cell * 2\n"
        "    return pool.submit(task, grid)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL103")
    assert len(findings) == 1 and "nested function" in findings[0].message


def test_rpl103_flags_global_mutation_reached_through_a_helper():
    source = (
        "_CACHE = None\n\n"
        "def poison():\n"
        "    global _CACHE\n"
        "    _CACHE = {}\n\n"
        "def task(cell):\n"
        "    poison()\n"
        "    return cell\n\n"
        "def run(pool, grid):\n"
        "    return pool.submit(task, grid)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL103")
    assert len(findings) == 1
    assert "mutates module globals" in findings[0].message
    assert "poison" in findings[0].message


def test_rpl103_allows_module_level_pure_function():
    source = (
        "def task(cell):\n"
        "    return cell * 2\n\n"
        "def run(pool, grid):\n"
        "    return pool.submit(task, grid)\n"
    )
    assert only(run_lint_source(source, LIB_PATH), "RPL103") == []


def test_rpl103_exempts_obs_sequence_counters(tmp_path):
    files = {
        "src/repro/obs/seq.py": (
            "_SEQ = 0\n\n"
            "def next_seq():\n"
            "    global _SEQ\n"
            "    _SEQ += 1\n"
            "    return _SEQ\n"
        ),
        "src/repro/em/driver.py": (
            "from repro.obs.seq import next_seq\n\n"
            "def task(cell):\n"
            "    return cell, next_seq()\n\n"
            "def run(pool, grid):\n"
            "    return pool.submit(task, grid)\n"
        ),
    }
    assert lint_tree(tmp_path, files, "RPL103", graph=True) == []


def test_rpl103_cross_module_requires_the_graph(tmp_path):
    files = {
        "src/repro/em/state.py": (
            "_MODEL = None\n\n"
            "def install(model):\n"
            "    global _MODEL\n"
            "    _MODEL = model\n"
        ),
        "src/repro/em/work.py": (
            "from repro.em.state import install\n\n"
            "def task(cell):\n"
            "    install(cell)\n"
            "    return cell\n"
        ),
        "src/repro/em/driver.py": (
            "from repro.em.work import task\n\n"
            "def run(pool, grid):\n"
            "    return pool.submit(task, grid)\n"
        ),
    }
    with_graph = lint_tree(tmp_path, files, "RPL103", graph=True)
    assert len(with_graph) == 1
    assert "install" in with_graph[0].message
    assert with_graph[0].path.endswith("em/driver.py")
    assert lint_tree(tmp_path, files, "RPL103", graph=False) == []


# ----------------------------------------------------------------------
# RPL104: rng/seed flowing into a callee that mints its own stream
# ----------------------------------------------------------------------
def test_rpl104_flags_rng_passed_into_minting_helper():
    source = (
        "import numpy as np\n\n"
        "def helper(samples):\n"
        "    local = np.random.default_rng(7)\n"
        "    return local.normal()\n\n"
        "def measure(rng):\n"
        "    return helper(rng)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL104")
    assert len(findings) == 1
    assert "helper" in findings[0].message
    assert "mints its own stream" in findings[0].message


def test_rpl104_allows_helper_deriving_from_its_own_param():
    source = (
        "import numpy as np\n\n"
        "def helper(seed):\n"
        "    return np.random.default_rng(seed).normal()\n\n"
        "def measure(rng, seed):\n"
        "    return helper(seed)\n"
    )
    assert only(run_lint_source(source, LIB_PATH), "RPL104") == []


def test_rpl104_allows_tuple_unpacked_seed_derivation():
    # The parallel-task idiom: one tuple param, unpacked before minting.
    source = (
        "import numpy as np\n\n"
        "def task(spec):\n"
        "    seed, scale = spec\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.normal() * scale\n\n"
        "def run(noise_seed):\n"
        "    return task((noise_seed, 2.0))\n"
    )
    assert only(run_lint_source(source, LIB_PATH), "RPL104") == []


def test_rpl104_flags_escape_two_calls_deep():
    source = (
        "import numpy as np\n\n"
        "def deep(values):\n"
        "    return np.random.default_rng(3).choice(values)\n\n"
        "def middle(samples):\n"
        "    return deep(samples)\n\n"
        "def measure(rng):\n"
        "    return middle(rng)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL104")
    assert len(findings) == 1 and "via" in findings[0].message


def test_rpl104_cross_module_requires_the_graph(tmp_path):
    files = {
        "src/repro/em/noise.py": (
            "import numpy as np\n\n"
            "def perturb(values):\n"
            "    return values + np.random.default_rng(11).normal()\n"
        ),
        "src/repro/em/measure.py": (
            "from repro.em.noise import perturb\n\n"
            "def observe(rng):\n"
            "    return perturb(rng)\n"
        ),
    }
    with_graph = lint_tree(tmp_path, files, "RPL104", graph=True)
    assert len(with_graph) == 1 and "perturb" in with_graph[0].message
    assert lint_tree(tmp_path, files, "RPL104", graph=False) == []


# ----------------------------------------------------------------------
# RPL105: payloads crossing the pickle boundary
# ----------------------------------------------------------------------
def test_rpl105_flags_lambda_and_generator_payloads():
    source = (
        "def task(item):\n"
        "    return item\n\n"
        "def run(pool, grid):\n"
        "    pool.submit(task, lambda: 1)\n"
        "    pool.submit(task, (g for g in grid))\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL105")
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "lambda" in messages and "generator" in messages


def test_rpl105_flags_live_handle_via_local_assignment():
    source = (
        "def task(item):\n"
        "    return item\n\n"
        "def run(pool, path):\n"
        "    stream = open(path)\n"
        "    return pool.submit(task, stream)\n"
    )
    findings = only(run_lint_source(source, LIB_PATH), "RPL105")
    assert len(findings) == 1 and "open()" in findings[0].message


def test_rpl105_allows_plain_value_payloads():
    source = (
        "def task(item):\n"
        "    return item\n\n"
        "def run(pool, grid):\n"
        "    return pool.submit(task, (grid, 2.0), [1, 2, 3])\n"
    )
    assert only(run_lint_source(source, LIB_PATH), "RPL105") == []


def test_rpl105_cross_module_class_field_requires_the_graph(tmp_path):
    files = {
        "src/repro/em/jobs.py": (
            "import threading\n\n"
            "class Job:\n"
            "    lock: threading.Lock\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
        ),
        "src/repro/em/driver.py": (
            "from repro.em.jobs import Job\n\n"
            "def task(job):\n"
            "    return job\n\n"
            "def run(pool):\n"
            "    return pool.submit(task, Job())\n"
        ),
    }
    with_graph = lint_tree(tmp_path, files, "RPL105", graph=True)
    assert len(with_graph) == 1
    assert "Job.lock" in with_graph[0].message
    assert "threading.Lock" in with_graph[0].message
    assert lint_tree(tmp_path, files, "RPL105", graph=False) == []
