"""`repro lint` regression suite: every rule fires on a minimal violating
snippet and stays silent on the corrected form; baseline and pragma
machinery round-trips; and — the meta-test — the repo itself is clean."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    save_baseline,
    stale_entries,
)
from repro.analysis.linter import (
    Finding,
    lint_project,
    run_lint,
    run_lint_source,
)
from repro.analysis.rules import RULE_CLASSES, all_rules
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
LIB_PATH = "src/repro/em/example.py"


def rules_of(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# RPL001: global / unseeded RNG
# ----------------------------------------------------------------------
def test_rpl001_flags_numpy_global_rng():
    source = "import numpy as np\n\nx = np.random.normal(size=3)\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL001"]


def test_rpl001_flags_unseeded_default_rng():
    source = "import numpy as np\n\nrng = np.random.default_rng()\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL001"]


def test_rpl001_flags_stdlib_random():
    source = "import random\n\nx = random.random()\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL001"]


def test_rpl001_flags_legacy_randomstate():
    source = "import numpy as np\n\nrs = np.random.RandomState(3)\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL001"]


def test_rpl001_allows_seeded_generator_threading():
    source = (
        "import numpy as np\n\n"
        "def make(seed):\n"
        "    return np.random.default_rng(seed)\n\n"
        "root = np.random.SeedSequence(7)\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_rpl001_exempts_tests_directory():
    source = "import numpy as np\n\nx = np.random.normal()\n"
    assert run_lint_source(source, "tests/test_example.py") == []


# ----------------------------------------------------------------------
# RPL002: internal Generator construction shadows the threaded stream
# ----------------------------------------------------------------------
def test_rpl002_flags_fixed_fallback_inside_rng_function():
    source = (
        "import numpy as np\n\n"
        "def measure(rng=None):\n"
        "    rng = rng if rng is not None else np.random.default_rng(0)\n"
        "    return rng.normal()\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL002"]


def test_rpl002_allows_generator_derived_from_seed_param():
    source = (
        "import numpy as np\n\n"
        "def measure(placement_seed):\n"
        "    rng = np.random.default_rng([placement_seed, 77])\n"
        "    return rng.normal()\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_rpl002_ignores_functions_without_rng_params():
    source = (
        "import numpy as np\n\n"
        "def default_stream():\n"
        "    return np.random.default_rng(12345)\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


# ----------------------------------------------------------------------
# RPL003: wall-clock / entropy reads in library code
# ----------------------------------------------------------------------
def test_rpl003_flags_wall_clock_in_library_code():
    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL003"]


def test_rpl003_flags_uuid_and_datetime():
    source = (
        "import uuid\nfrom datetime import datetime\n\n\n"
        "def tag():\n"
        "    return uuid.uuid4(), datetime.now()\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL003", "RPL003"]


def test_rpl003_flags_ad_hoc_stopwatch_outside_obs():
    source = "import time\n\n\ndef tic():\n    return time.perf_counter()\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL003"]


def test_rpl003_allows_monotonic_clocks_in_obs():
    source = "import time\n\n\ndef tic():\n    return time.perf_counter()\n"
    assert run_lint_source(source, "src/repro/obs/example.py") == []


def test_rpl003_still_bans_wall_clock_in_obs():
    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    assert rules_of(run_lint_source(source, "src/repro/obs/example.py")) == [
        "RPL003"
    ]


def test_rpl003_does_not_apply_outside_library_tree():
    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    assert run_lint_source(source, "benchmarks/bench_example.py") == []


# ----------------------------------------------------------------------
# RPL004: hash-ordered iteration into order-sensitive sinks
# ----------------------------------------------------------------------
def test_rpl004_flags_list_over_set():
    source = "def order(items):\n    return list(set(items))\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL004"]


def test_rpl004_flags_for_loop_over_set_literal():
    source = (
        "def walk(a, b):\n"
        "    out = []\n"
        "    for item in {a, b}:\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL004"]


def test_rpl004_flags_json_dumps_of_set():
    source = (
        "import json\n\n\n"
        "def dump(items):\n"
        "    return json.dumps({'used': set(items)})\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL004"]


def test_rpl004_allows_sorted_and_order_insensitive_sinks():
    source = (
        "def ok(items, d):\n"
        "    a = sorted(set(items))\n"
        "    b = len(set(items))\n"
        "    c = max({1, 2})\n"
        "    e = {k: 1 for k in sorted(d.keys())}\n"
        "    return a, b, c, e\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


# ----------------------------------------------------------------------
# RPL005: physical-constant literals
# ----------------------------------------------------------------------
@pytest.mark.parametrize("literal", ["3e8", "299792458.0", "1.38e-23", "2.462e9"])
def test_rpl005_flags_known_constant_literals(literal):
    source = f"VALUE = {literal}\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL005"]


def test_rpl005_allows_named_constants_and_unrelated_numbers():
    source = (
        "from repro.constants import SPEED_OF_LIGHT\n\n"
        "BANDWIDTH = 20e6\n"
        "WAVELENGTH = SPEED_OF_LIGHT / 2.0\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_rpl005_exempts_the_constants_module():
    source = "SPEED_OF_LIGHT = 299792458.0\n"
    assert run_lint_source(source, "src/repro/constants.py") == []


# ----------------------------------------------------------------------
# RPL006: observability registration and naming
# ----------------------------------------------------------------------
def test_rpl006_flags_registration_inside_function():
    source = (
        "from repro.obs.metrics import global_registry\n\n\n"
        "def hot_path():\n"
        "    global_registry().counter('em.example.hits').inc()\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_flags_bad_name_grammar():
    source = (
        "from repro.obs.metrics import global_registry\n\n"
        "_C = global_registry().counter('EmExampleHits')\n"
    )
    # Raw module-level capture + grammar violation: two findings.
    assert rules_of(run_lint_source(source, LIB_PATH)) == [
        "RPL006",
        "RPL006",
    ]


def test_rpl006_flags_histogram_without_unit_suffix():
    source = (
        "from repro.obs.metrics import global_registry\n\n"
        "_H = global_registry().histogram('em.example.latency')\n"
    )
    # Raw module-level capture + missing unit suffix: two findings.
    assert rules_of(run_lint_source(source, LIB_PATH)) == [
        "RPL006",
        "RPL006",
    ]


def test_rpl006_flags_duplicate_registration():
    source = (
        "from repro.obs.metrics import global_registry\n\n"
        "_A = global_registry().counter('em.example.hits')\n"
        "_B = global_registry().counter('em.example.hits')\n"
    )
    # Two raw captures plus the duplicate name: three findings.
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"] * 3


def test_rpl006_flags_raw_module_level_instrument_capture():
    source = (
        "from repro.obs.metrics import global_registry\n\n"
        "_HITS = global_registry().counter('em.example.hits')\n"
    )
    findings = run_lint_source(source, LIB_PATH)
    assert rules_of(findings) == ["RPL006"]
    assert "stale" in findings[0].message
    assert "counter_handle" in findings[0].message


def test_rpl006_flags_inline_span_literal():
    source = (
        "from repro.obs.tracing import global_tracer\n\n\n"
        "def phase():\n"
        "    with global_tracer().span('em.example_phase'):\n"
        "        pass\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_allows_module_level_names_on_grammar():
    source = (
        "from repro.obs.metrics import counter_handle, histogram_handle\n"
        "from repro.obs.tracing import global_tracer\n\n"
        "_HITS = counter_handle('em.example.hits')\n"
        "_WAIT_S = histogram_handle('em.example.wait_s')\n"
        "_SPAN_TRACE = 'em.example_trace'\n\n\n"
        "def phase():\n"
        "    with global_tracer().span(_SPAN_TRACE):\n"
        "        pass\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_rpl006_flags_handle_registration_inside_function():
    source = (
        "from repro.obs.metrics import counter_handle\n\n\n"
        "def hot_path():\n"
        "    counter_handle('em.example.hits').inc()\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_flags_handle_bad_grammar_and_duplicates():
    source = (
        "from repro.obs.metrics import counter_handle, gauge_handle\n\n"
        "_A = counter_handle('EmExampleHits')\n"
        "_B = gauge_handle('em.example.depth')\n"
        "_C = counter_handle('em.example.depth')\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006", "RPL006"]


def test_rpl006_flags_histogram_handle_without_unit_suffix():
    source = (
        "from repro.obs.metrics import histogram_handle\n\n"
        "_H = histogram_handle('em.example.latency')\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_flags_inline_request_span_literal():
    source = (
        "from repro.obs.context import request_span\n\n\n"
        "def phase():\n"
        "    with request_span('em.example_phase'):\n"
        "        pass\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_flags_emit_request_span_dynamic_name():
    source = (
        "from repro.obs.context import emit_request_span\n\n\n"
        "def phase(name, ctx):\n"
        "    emit_request_span(name, ctx, 0.0, 1.0)\n"
    )
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL006"]


def test_rpl006_allows_handle_and_request_span_idiom():
    source = (
        "from repro.obs.context import emit_request_span, request_span\n"
        "from repro.obs.metrics import counter_handle, histogram_handle\n\n"
        "_HITS = counter_handle('em.example.hits')\n"
        "_WAIT_S = histogram_handle('em.example.wait_s')\n"
        "_SPAN_PHASE = 'em.example_phase'\n"
        "_SPAN_QUEUE = 'em.example_queue'\n\n\n"
        "def phase(ctx):\n"
        "    with request_span(_SPAN_PHASE):\n"
        "        _HITS.inc()\n"
        "    emit_request_span(_SPAN_QUEUE, ctx, 0.0, 1.0)\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


# ----------------------------------------------------------------------
# Pragmas, syntax errors, ordering
# ----------------------------------------------------------------------
def test_pragma_suppresses_on_line_and_from_comment_above():
    source = (
        "import time\n\n\n"
        "def stamp():\n"
        "    a = time.time()  # reprolint: disable=RPL003 -- test fixture\n"
        "    # reprolint: disable=RPL003 -- covers the next code line\n"
        "    b = time.time()\n"
        "    return a, b\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_skip_file_pragma_disables_rule_everywhere():
    source = (
        "# reprolint: skip-file=RPL005\n"
        "A = 3e8\n"
        "B = 2.462e9\n"
    )
    assert run_lint_source(source, LIB_PATH) == []


def test_pragma_does_not_suppress_other_rules():
    source = "import time\n\nx = time.time()  # reprolint: disable=RPL001\n"
    assert rules_of(run_lint_source(source, LIB_PATH)) == ["RPL003"]


def test_syntax_error_becomes_rpl000_finding():
    findings = run_lint_source("def broken(:\n", LIB_PATH)
    assert rules_of(findings) == ["RPL000"]


def test_findings_are_sorted_and_fingerprints_stable():
    source = "import numpy as np\n\nx = np.random.normal()\ny = 3e8\n"
    findings = run_lint_source(source, LIB_PATH)
    assert findings == sorted(findings)
    shifted = run_lint_source("\n\n" + source, LIB_PATH)
    assert [f.fingerprint() for f in findings] == [
        f.fingerprint() for f in shifted
    ]


def test_rule_registry_ids_are_unique_and_stable():
    ids = [cls.id for cls in RULE_CLASSES]
    assert len(set(ids)) == len(ids)
    assert sorted(ids) == [f"RPL00{n}" for n in range(1, 7)] + [
        f"RPL10{n}" for n in range(1, 6)
    ]
    assert [rule.id for rule in all_rules()] == sorted(ids)


# ----------------------------------------------------------------------
# Baseline machinery
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    module = tmp_path / "module.py"
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    baseline_path = tmp_path / "baseline.json"

    findings = run_lint([str(module)])
    assert rules_of(findings) == ["RPL001"]

    save_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    fresh, matched = apply_baseline(run_lint([str(module)]), baseline)
    assert fresh == [] and matched == 1

    # A second copy of the same violation exceeds the recorded budget.
    module.write_text(
        "import numpy as np\n\nx = np.random.normal()\nx = np.random.normal()\n"
    )
    fresh, matched = apply_baseline(run_lint([str(module)]), baseline)
    assert matched == 1 and rules_of(fresh) == ["RPL001"]


def test_missing_baseline_is_empty():
    baseline = load_baseline("/nonexistent/baseline.json")
    assert baseline.counts == {} and baseline.total == 0


def test_stale_entries_and_prune(tmp_path):
    module = tmp_path / "module.py"
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, run_lint([str(module)]))

    # Fix the violation: the baseline entry goes stale.
    module.write_text("import numpy as np\n\nx = 1\n")
    findings = run_lint([str(module)])
    baseline = load_baseline(baseline_path)
    stale = stale_entries(findings, baseline)
    assert len(stale) == 1 and sum(stale.values()) == 1

    dropped = prune_baseline(baseline_path, findings, baseline)
    assert dropped == 1
    assert load_baseline(baseline_path).total == 0
    assert stale_entries(findings, load_baseline(baseline_path)) == {}


def test_prune_clamps_budget_to_live_matches(tmp_path):
    module = tmp_path / "module.py"
    module.write_text(
        "import numpy as np\n\nx = np.random.normal()\nx = np.random.normal()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, run_lint([str(module)]))
    assert load_baseline(baseline_path).total == 2

    # One of the two grandfathered copies is fixed: budget shrinks to 1.
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    findings = run_lint([str(module)])
    dropped = prune_baseline(baseline_path, findings, load_baseline(baseline_path))
    assert dropped == 1
    assert load_baseline(baseline_path).total == 1


# ----------------------------------------------------------------------
# Crash resilience: RPL000 is file-scoped, never a run abort
# ----------------------------------------------------------------------
def test_unparseable_file_yields_rpl000_and_others_still_lint(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\n\nx = np.random.normal()\n")

    findings = run_lint([str(broken), str(dirty)])
    by_rule = {f.rule: f for f in findings}
    assert set(by_rule) == {"RPL000", "RPL001"}
    assert by_rule["RPL000"].path.endswith("broken.py")
    assert by_rule["RPL001"].path.endswith("dirty.py")


def test_null_byte_file_yields_rpl000(tmp_path):
    hostile = tmp_path / "hostile.py"
    hostile.write_bytes(b"x = 1\x00\n")
    findings = run_lint([str(hostile)])
    assert rules_of(findings) == ["RPL000"]


def test_modern_syntax_parses_walrus_and_match(tmp_path):
    module = tmp_path / "modern.py"
    module.write_text(
        "def classify(value):\n"
        "    if (n := len(value)) > 3:\n"
        "        return n\n"
        "    match value:\n"
        "        case [x]:\n"
        "            return x\n"
        "        case _:\n"
        "            return None\n"
    )
    assert run_lint([str(module)]) == []


def test_pep695_syntax_is_rpl000_or_clean_depending_on_interpreter(tmp_path):
    # ``type`` aliases need Python 3.12; older interpreters must degrade
    # to a single file-scoped RPL000, not a crashed run.
    module = tmp_path / "aliases.py"
    module.write_text("type Vector = list[float]\n\ndef norm(v: Vector):\n    return v\n")
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n")
    findings = run_lint([str(module), str(ok)])
    assert rules_of(findings) in ([], ["RPL000"])
    assert all(f.path.endswith("aliases.py") for f in findings)


def test_crashing_rule_is_contained_to_rpl000_for_that_file(tmp_path):
    from repro.analysis.linter import Rule

    class ExplodingRule(Rule):
        id = "RPL999"
        title = "always crashes"
        hint = ""

        def check(self, context):
            raise RuntimeError("boom")

    module = tmp_path / "module.py"
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    run = lint_project([str(module)], rules=[*all_rules(), ExplodingRule()])
    by_rule = sorted(rules_of(run.findings))
    assert by_rule == ["RPL000", "RPL001"]
    crash = next(f for f in run.findings if f.rule == "RPL000")
    assert "RPL999" in crash.message and "boom" in crash.message


# ----------------------------------------------------------------------
# CLI: exit codes, JSON schema, --update-baseline
# ----------------------------------------------------------------------
def test_cli_lint_json_schema_and_exit_codes(tmp_path, capsys):
    module = tmp_path / "module.py"
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    baseline_path = tmp_path / "baseline.json"

    rc = main(
        ["lint", str(module), "--format", "json", "--baseline", str(baseline_path)]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["version"] == 2
    assert payload["schema_version"] == 2
    assert "costs" in payload
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["by_rule"] == {"RPL001": 1}
    assert payload["summary"]["files_checked"] == 1
    (finding,) = payload["findings"]
    assert set(finding) >= {
        "path",
        "line",
        "col",
        "rule",
        "message",
        "hint",
        "snippet",
        "fingerprint",
    }
    assert finding["rule"] == "RPL001"

    rc = main(
        ["lint", str(module), "--baseline", str(baseline_path), "--update-baseline"]
    )
    capsys.readouterr()
    assert rc == 0 and baseline_path.exists()

    rc = main(["lint", str(module), "--baseline", str(baseline_path)])
    out = capsys.readouterr().out
    assert rc == 0 and "1 baselined" in out


def test_render_json_orders_findings_by_rule_then_site():
    import json as json_module

    from repro.analysis.report import render_json

    def finding(rule, path, line):
        return Finding(
            path=path, line=line, col=0, rule=rule,
            message="m", hint="h", snippet="s",
        )

    scrambled = [
        finding("RPL104", "b.py", 3),
        finding("RPL001", "b.py", 9),
        finding("RPL104", "a.py", 7),
        finding("RPL001", "a.py", 2),
    ]
    payload = json_module.loads(render_json(scrambled, files_checked=2))
    order = [(f["rule"], f["path"], f["line"]) for f in payload["findings"]]
    assert order == [
        ("RPL001", "a.py", 2),
        ("RPL001", "b.py", 9),
        ("RPL104", "a.py", 7),
        ("RPL104", "b.py", 3),
    ]


def test_cli_lint_missing_path_is_usage_error(tmp_path, capsys):
    rc = main(["lint", str(tmp_path / "nope"), "--baseline", "unused.json"])
    capsys.readouterr()
    assert rc == 2


def test_cli_lint_stale_baseline_warns_and_strict_fails(tmp_path, capsys):
    module = tmp_path / "module.py"
    module.write_text("import numpy as np\n\nx = np.random.normal()\n")
    baseline_path = tmp_path / "baseline.json"
    main(["lint", str(module), "--baseline", str(baseline_path), "--update-baseline"])
    capsys.readouterr()

    module.write_text("x = 1\n")
    rc = main(["lint", str(module), "--baseline", str(baseline_path)])
    captured = capsys.readouterr()
    assert rc == 0 and "stale baseline" in captured.err

    rc = main(["lint", str(module), "--baseline", str(baseline_path), "--strict"])
    capsys.readouterr()
    assert rc == 1

    rc = main(
        ["lint", str(module), "--baseline", str(baseline_path), "--prune-baseline"]
    )
    captured = capsys.readouterr()
    assert rc == 0 and "pruned 1" in captured.out
    assert load_baseline(baseline_path).total == 0

    rc = main(["lint", str(module), "--baseline", str(baseline_path), "--strict"])
    captured = capsys.readouterr()
    assert rc == 0 and "stale" not in captured.err


def test_cli_lint_select_ignore_and_no_graph(tmp_path, capsys):
    module = tmp_path / "module.py"
    module.write_text(
        "import numpy as np\n\n"
        "x = np.random.normal()\n"
        "def task(cell):\n"
        "    return cell\n\n"
        "def run(pool, grid):\n"
        "    return pool.submit(task, lambda: 1)\n"
    )
    baseline = str(tmp_path / "baseline.json")

    rc = main(["lint", str(module), "--baseline", baseline, "--select", "RPL105"])
    out = capsys.readouterr().out
    assert rc == 1 and "RPL105" in out and "RPL001" not in out

    rc = main(["lint", str(module), "--baseline", baseline, "--ignore", "RPL001"])
    out = capsys.readouterr().out
    assert rc == 1 and "RPL001" not in out and "RPL105" in out

    # --no-graph silences graph rules entirely for this single-file case
    # only where cross-module knowledge is needed; the lambda payload is
    # same-file, so it still fires — but stats still render.
    rc = main(["lint", str(module), "--baseline", baseline, "--stats"])
    out = capsys.readouterr().out
    assert rc == 1 and "<index>" in out


# ----------------------------------------------------------------------
# The meta-test: the repo itself is lint-clean with an empty baseline
# ----------------------------------------------------------------------
def test_repo_is_lint_clean_at_head():
    findings = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
    )
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
    )


def test_shipped_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")
    assert baseline.total == 0
