"""Tests for repro.net.mac and repro.experiments.mac_harmonization."""

import numpy as np
import pytest

from repro.experiments.mac_harmonization import run_mac_harmonization
from repro.net.mac import MacConfig, MacStation, simulate_csma


@pytest.fixture
def mac_rng():
    return np.random.default_rng(42)


class TestCsmaBasics:
    def test_single_station_near_full_airtime(self, mac_rng):
        result = simulate_csma([MacStation("a")], 1.0, mac_rng)
        # One saturated station: throughput close to payload/airtime minus
        # contention overhead.
        config = MacConfig()
        ceiling = config.payload_bits / config.frame_airtime_s / 1e6
        assert 0.6 * ceiling < result.throughput_mbps("a") <= ceiling
        assert result.collisions["a"] == 0

    def test_two_audible_stations_share_fairly(self, mac_rng):
        stations = [
            MacStation("a", can_hear=frozenset({"b"})),
            MacStation("b", can_hear=frozenset({"a"})),
        ]
        result = simulate_csma(stations, 2.0, mac_rng)
        a = result.throughput_mbps("a")
        b = result.throughput_mbps("b")
        assert a == pytest.approx(b, rel=0.2)  # long-run fairness
        single = simulate_csma([MacStation("a")], 2.0, np.random.default_rng(42))
        # Each gets roughly half of a lone station's throughput.
        assert a == pytest.approx(single.throughput_mbps("a") / 2, rel=0.3)

    def test_hidden_terminals_collide_heavily(self, mac_rng):
        hidden = [
            MacStation("a", can_hear=frozenset(), interferes_with=frozenset({"b"})),
            MacStation("b", can_hear=frozenset(), interferes_with=frozenset({"a"})),
        ]
        audible = [
            MacStation("a", can_hear=frozenset({"b"})),
            MacStation("b", can_hear=frozenset({"a"})),
        ]
        hidden_result = simulate_csma(hidden, 2.0, np.random.default_rng(1))
        audible_result = simulate_csma(audible, 2.0, np.random.default_rng(1))
        assert hidden_result.collision_rate("a") > 3 * audible_result.collision_rate("a")
        assert (
            hidden_result.total_throughput_mbps()
            < audible_result.total_throughput_mbps()
        )

    def test_isolated_stations_independent(self, mac_rng):
        result = simulate_csma(
            [MacStation("a"), MacStation("b")], 1.0, mac_rng
        )
        single = simulate_csma([MacStation("a")], 1.0, np.random.default_rng(42))
        assert result.throughput_mbps("a") == pytest.approx(
            single.throughput_mbps("a"), rel=0.15
        )

    def test_success_probability_scales_goodput(self, mac_rng):
        perfect = simulate_csma(
            [MacStation("a", success_probability=1.0)], 1.0, np.random.default_rng(3)
        )
        lossy = simulate_csma(
            [MacStation("a", success_probability=0.5)], 1.0, np.random.default_rng(3)
        )
        ratio = lossy.throughput_mbps("a") / perfect.throughput_mbps("a")
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_validation(self, mac_rng):
        with pytest.raises(ValueError):
            simulate_csma([], 1.0, mac_rng)
        with pytest.raises(ValueError):
            simulate_csma([MacStation("a")], 0.0, mac_rng)
        with pytest.raises(ValueError):
            simulate_csma(
                [MacStation("a"), MacStation("a")], 1.0, mac_rng
            )
        with pytest.raises(ValueError):
            MacStation("a", success_probability=1.5)
        with pytest.raises(ValueError):
            MacConfig(cw_min=0)
        with pytest.raises(ValueError):
            MacConfig(payload_bits=0)


class TestMacHarmonization:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mac_harmonization(duration_s=1.0)

    def test_harmonized_beats_hidden_co_channel(self, result):
        assert result.harmonized_mbps > result.co_channel_mbps
        assert result.harmonization_gain > 1.2

    def test_harmonized_beats_static_split(self, result):
        assert result.harmonized_mbps > result.static_split_mbps

    def test_fig7_pair_is_opposite(self, result):
        assert result.fig7.is_opposite

    def test_validation(self):
        with pytest.raises(ValueError):
            run_mac_harmonization(duration_s=0.0)
