"""Tests for repro.mimo."""

import numpy as np
import pytest

from repro.em.channel import subcarrier_frequencies
from repro.em.paths import SignalPath
from repro.mimo.capacity import (
    capacity_bits,
    ofdm_capacity_bits,
    waterfilling_capacity_bits,
)
from repro.mimo.channel_matrix import (
    MimoChannel,
    condition_number_db,
    condition_numbers_db,
)
from repro.mimo.detection import mmse_detect, post_detection_snr_db, zf_detect
from repro.mimo.precoding import (
    mmse_precoder,
    precoding_power_penalty_db,
    zero_forcing_precoder,
)


class TestConditionNumber:
    def test_identity_is_zero_db(self):
        assert condition_number_db(np.eye(2)) == pytest.approx(0.0)

    def test_unitary_is_zero_db(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((3, 3)))
        assert condition_number_db(q) == pytest.approx(0.0, abs=1e-9)

    def test_known_diagonal(self):
        h = np.diag([10.0, 1.0])
        assert condition_number_db(h) == pytest.approx(20.0)

    def test_singular_capped(self):
        h = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert condition_number_db(h) == 200.0

    def test_batch_matches_single(self, rng):
        matrices = rng.standard_normal((5, 2, 2)) + 1j * rng.standard_normal((5, 2, 2))
        batch = condition_numbers_db(matrices)
        singles = [condition_number_db(m) for m in matrices]
        assert np.allclose(batch, singles)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            condition_number_db(np.ones(4))


class TestMimoChannel:
    def _channel(self):
        freqs = subcarrier_frequencies(16, 20e6)
        paths = [
            [
                [SignalPath(gain=1.0, delay_s=0.0)],
                [SignalPath(gain=0.5, delay_s=50e-9)],
            ],
            [
                [SignalPath(gain=0.3j, delay_s=100e-9)],
                [SignalPath(gain=0.8, delay_s=0.0)],
            ],
        ]
        return MimoChannel.from_lists(paths, freqs)

    def test_shape(self):
        channel = self._channel()
        assert channel.num_rx == 2
        assert channel.num_tx == 2
        assert channel.matrices().shape == (16, 2, 2)

    def test_entry_matches_siso_cfr(self):
        channel = self._channel()
        h = channel.matrices()
        from repro.em.paths import paths_to_cfr

        expected = paths_to_cfr(channel.paths[0][1], channel.frequencies_hz)
        assert np.allclose(h[:, 0, 1], expected)

    def test_condition_numbers_positive(self):
        cond = self._channel().condition_numbers_db()
        assert np.all(cond >= 0)

    def test_ragged_rejected(self):
        freqs = subcarrier_frequencies(4, 20e6)
        with pytest.raises(ValueError):
            MimoChannel.from_lists([[[]], [[], []]], freqs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MimoChannel.from_lists([], subcarrier_frequencies(4, 20e6))


class TestCapacity:
    def test_siso_shannon(self):
        h = np.array([[1.0 + 0j]])
        assert capacity_bits(h, 1.0) == pytest.approx(1.0)  # log2(1+1)

    def test_capacity_zero_at_zero_snr(self):
        h = np.eye(2, dtype=complex)
        assert capacity_bits(h, 0.0) == pytest.approx(0.0)

    def test_well_conditioned_beats_ill_conditioned(self):
        snr = 100.0
        good = np.eye(2, dtype=complex)
        bad = np.array([[1.0, 0.99], [0.99, 1.0]], dtype=complex)
        # Normalise Frobenius norms to isolate conditioning.
        bad = bad / np.linalg.norm(bad, "fro") * np.linalg.norm(good, "fro")
        assert capacity_bits(good, snr) > capacity_bits(bad, snr)

    def test_waterfilling_at_least_equal_power(self, rng):
        for _ in range(10):
            h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
            snr = float(rng.uniform(0.1, 100.0))
            assert waterfilling_capacity_bits(h, snr) >= capacity_bits(h, snr) - 1e-9

    def test_waterfilling_siso_matches_shannon(self):
        h = np.array([[2.0 + 0j]])
        assert waterfilling_capacity_bits(h, 3.0) == pytest.approx(
            np.log2(1 + 3.0 * 4.0)
        )

    def test_ofdm_capacity_mean(self, rng):
        matrices = rng.standard_normal((4, 2, 2)) + 1j * rng.standard_normal((4, 2, 2))
        mean = ofdm_capacity_bits(matrices, 10.0)
        singles = [capacity_bits(m, 10.0) for m in matrices]
        assert mean == pytest.approx(np.mean(singles))

    def test_negative_snr_rejected(self):
        with pytest.raises(ValueError):
            capacity_bits(np.eye(2), -1.0)


class TestPrecodingDetection:
    def test_zf_precoder_diagonalises(self, rng):
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        w = zero_forcing_precoder(h)
        product = h @ w
        off_diag = product - np.diag(np.diag(product))
        assert np.allclose(off_diag, 0.0, atol=1e-10)

    def test_zf_precoder_unit_power(self, rng):
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        w = zero_forcing_precoder(h)
        assert np.linalg.norm(w, "fro") ** 2 == pytest.approx(2.0)

    def test_mmse_precoder_converges_to_zf(self, rng):
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        w_zf = zero_forcing_precoder(h)
        w_mmse = mmse_precoder(h, 1e-12)
        assert np.allclose(w_zf, w_mmse, atol=1e-5)

    def test_power_penalty_grows_with_conditioning(self):
        good = np.eye(2, dtype=complex)
        bad = np.diag([1.0, 0.05]).astype(complex)
        assert precoding_power_penalty_db(bad) > precoding_power_penalty_db(good)

    def test_zf_detection_recovers(self, rng):
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        x = np.array([1 + 1j, -1 + 0.5j])
        assert np.allclose(zf_detect(h @ x, h), x)

    def test_mmse_detection_low_noise(self, rng):
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        x = np.array([1 + 1j, -1 + 0.5j])
        assert np.allclose(mmse_detect(h @ x, h, 1e-12), x, atol=1e-5)

    def test_post_detection_snr_penalised_by_conditioning(self):
        snr = 100.0
        good = np.eye(2, dtype=complex)
        bad = np.array([[1.0, 0.95], [0.95, 1.0]], dtype=complex)
        assert np.min(post_detection_snr_db(bad, snr)) < np.min(
            post_detection_snr_db(good, snr)
        )

    def test_zero_channel_rejected(self):
        with pytest.raises(ValueError):
            zero_forcing_precoder(np.zeros((2, 2)))
