"""Tests for repro.em.mobility, repro.control.energy and repro.net.alignment."""


import numpy as np
import pytest

from repro.control.energy import (
    ElementPowerModel,
    EnergyBudget,
    Harvester,
    indoor_light_harvester,
    rf_harvester,
)
from repro.em.geometry import Point
from repro.em.mobility import MovingScatterer, TimeVaryingScene, walking_person
from repro.em.scene import Scatterer, shoebox_scene
from repro.net.alignment import (
    alignment_cosine,
    isolation_db,
    mean_alignment_cosine,
    post_nulling_inr_db,
)


class TestMobility:
    def test_straight_motion(self):
        mover = MovingScatterer(
            scatterer=Scatterer(Point(1.0, 1.0)),
            velocity_mps=Point(1.0, 0.0),
            bounds=(10.0, 10.0),
        )
        assert mover.position_at(2.0) == Point(3.0, 1.0)

    def test_elastic_bounce(self):
        mover = MovingScatterer(
            scatterer=Scatterer(Point(9.0, 5.0)),
            velocity_mps=Point(1.0, 0.0),
            bounds=(10.0, 10.0),
        )
        # After 3 s: 12 m folded -> 8 m.
        assert mover.position_at(3.0).x == pytest.approx(8.0)

    def test_position_always_in_bounds(self):
        mover = walking_person(Point(2.0, 3.0), 0.7, bounds=(8.0, 6.0))
        for t in np.linspace(0.0, 120.0, 77):
            p = mover.position_at(float(t))
            assert 0.0 <= p.x <= 8.0
            assert 0.0 <= p.y <= 6.0

    def test_walking_person_speed(self):
        person = walking_person(Point(1, 1), 0.0, bounds=(8.0, 6.0), speed_mph=2.0)
        assert person.speed_mph == pytest.approx(2.0)

    def test_scene_snapshots_differ(self):
        base = shoebox_scene(8.0, 6.0)
        scene = TimeVaryingScene(
            base=base,
            movers=(walking_person(Point(2, 3), 0.3, bounds=(8.0, 6.0)),),
        )
        a = scene.scene_at(0.0)
        b = scene.scene_at(1.0)
        assert a.scatterers[-1].position != b.scatterers[-1].position
        assert len(a.scatterers) == len(base.scatterers) + 1

    def test_max_speed(self):
        scene = TimeVaryingScene(
            base=shoebox_scene(8.0, 6.0),
            movers=(
                walking_person(Point(2, 3), 0.0, (8.0, 6.0), speed_mph=1.0),
                walking_person(Point(4, 3), 0.0, (8.0, 6.0), speed_mph=4.5),
            ),
        )
        assert scene.max_speed_mph() == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingScatterer(
                scatterer=Scatterer(Point(0, 0)),
                velocity_mps=Point(1, 0),
                bounds=(0.0, 5.0),
            )
        with pytest.raises(ValueError):
            TimeVaryingScene(base=shoebox_scene(4, 4), movers=())
        with pytest.raises(ValueError):
            walking_person(Point(0, 0), 0.0, (5.0, 5.0), speed_mph=0.0)


class TestEnergy:
    def test_average_power_components(self):
        model = ElementPowerModel(
            idle_w=50e-6, switching_w=5e-3, switching_time_s=100e-6, active_w=0.0
        )
        # 100 switches/s: 5 mW * 100 us * 100 = 50 uW extra.
        assert model.average_power_w(100.0) == pytest.approx(100e-6)

    def test_active_duty_cycle(self):
        model = ElementPowerModel(active_w=100e-3)
        assert model.average_power_w(0.0, active_duty_cycle=0.5) == pytest.approx(
            50e-3 + model.idle_w
        )

    def test_passive_element_sustainable_on_indoor_light(self):
        budget = EnergyBudget(
            element=ElementPowerModel(),
            harvester=indoor_light_harvester(area_cm2=25.0),
        )
        # A passive element switching a few hundred times per second
        # (several packet slots) runs on a palm-sized solar cell...
        assert budget.is_sustainable(switches_per_second=300.0)
        # ... but continuous per-slot switching (~600/s) needs more light.
        assert not budget.is_sustainable(switches_per_second=600.0)

    def test_active_element_drains(self):
        budget = EnergyBudget(
            element=ElementPowerModel(active_w=100e-3),
            harvester=indoor_light_harvester(area_cm2=25.0),
        )
        assert not budget.is_sustainable(10.0, active_duty_cycle=0.5)
        lifetime = budget.lifetime_s(10.0, active_duty_cycle=0.5)
        assert 0 < lifetime < float("inf")
        # 10 J battery at ~50 mW deficit: a few minutes.
        assert lifetime == pytest.approx(10.0 / 0.05, rel=0.1)

    def test_max_sustainable_switch_rate(self):
        budget = EnergyBudget(
            element=ElementPowerModel(),
            harvester=Harvester("test", power_w=550e-6),
        )
        rate = budget.max_sustainable_switch_rate()
        # headroom 500 uW / (5 mW * 100 us) = 1000 switches/s.
        assert rate == pytest.approx(1000.0)
        assert budget.is_sustainable(rate * 0.99)
        assert not budget.is_sustainable(rate * 1.01)

    def test_rf_harvester(self):
        harvester = rf_harvester(incident_dbm=0.0, efficiency=0.5)
        assert harvester.power_w == pytest.approx(0.5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElementPowerModel(idle_w=-1.0)
        with pytest.raises(ValueError):
            Harvester("bad", power_w=-1.0)
        with pytest.raises(ValueError):
            indoor_light_harvester(area_cm2=0.0)
        with pytest.raises(ValueError):
            rf_harvester(efficiency=0.0)
        budget = EnergyBudget(ElementPowerModel(), Harvester("h", 1e-3))
        with pytest.raises(ValueError):
            budget.net_power_w(-1.0)


class TestAlignment:
    def test_collinear_fully_aligned(self):
        h = np.array([1 + 1j, 2 - 0.5j])
        assert alignment_cosine(h, 3.7j * h) == pytest.approx(1.0)

    def test_orthogonal_unaligned(self):
        assert alignment_cosine(np.array([1, 0]), np.array([0, 1])) == pytest.approx(0.0)

    def test_mean_alignment(self):
        h1 = np.array([[1, 0], [1, 0]], dtype=complex)
        h2 = np.array([[1, 0], [0, 1]], dtype=complex)
        assert mean_alignment_cosine(h1, h2) == pytest.approx(0.5)

    def test_post_nulling_removes_aligned_interference(self):
        h1 = np.array([1 + 0j, 1 + 0j])
        h2 = 0.5 * h1  # perfectly aligned
        inr = post_nulling_inr_db(h1, h2, interferer_power_w=1e-3, noise_power_w=1e-12)
        assert inr < -200  # clamped floor: nothing leaks

    def test_post_nulling_leaks_orthogonal_interference(self):
        h1 = np.array([1 + 0j, 0 + 0j])
        h2 = np.array([0 + 0j, 1 + 0j])
        inr = post_nulling_inr_db(h1, h2, interferer_power_w=1e-9, noise_power_w=1e-12)
        assert inr == pytest.approx(30.0)  # all of h2 leaks

    def test_alignment_improves_post_nulling_inr(self):
        h1 = np.array([1 + 0j, 0.2 + 0j])
        aligned = h1 * 0.9 + 0.05 * np.array([0, 1])
        misaligned = np.array([0.3 + 0j, 1 + 0j])
        inr_aligned = post_nulling_inr_db(h1, aligned, 1e-6, 1e-12)
        inr_misaligned = post_nulling_inr_db(h1, misaligned, 1e-6, 1e-12)
        assert inr_aligned < inr_misaligned

    def test_isolation(self):
        assert isolation_db([1e-6], [1e-9]) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            alignment_cosine(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            alignment_cosine(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            post_nulling_inr_db(np.ones(2), np.ones(2), -1.0, 1.0)
        with pytest.raises(ValueError):
            isolation_db([], [1.0])
        with pytest.raises(ValueError):
            isolation_db([1.0], [-1.0])
