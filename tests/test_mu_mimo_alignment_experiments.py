"""Tests for repro.experiments.mu_mimo and repro.experiments.alignment_study."""

import numpy as np
import pytest

from repro.core.configuration import ArrayConfiguration
from repro.experiments import (
    build_mimo_setup,
    run_alignment_study,
    run_mu_mimo,
    )
from repro.experiments.mu_mimo import mu_mimo_matrices, zf_sum_rate_bits
from repro.sdr.device import warp_v3
from repro.em.geometry import Point


class TestMuMimoPieces:
    def test_matrix_shape(self):
        setup = build_mimo_setup(0)
        rx0 = setup.rx_device.position
        clients = [
            warp_v3("c0", rx0),
            warp_v3("c1", Point(rx0.x + 0.5, rx0.y)),
        ]
        h = mu_mimo_matrices(
            setup.testbed, setup.tx_device, clients, ArrayConfiguration((0, 0, 0))
        )
        assert h.shape == (64, 2, 2)

    def test_no_clients_rejected(self):
        setup = build_mimo_setup(0)
        with pytest.raises(ValueError):
            mu_mimo_matrices(
                setup.testbed, setup.tx_device, [], ArrayConfiguration((0, 0, 0))
            )

    def test_sum_rate_monotone_in_power(self, rng):
        h = rng.standard_normal((8, 2, 2)) * 1e-4 + 1j * rng.standard_normal((8, 2, 2)) * 1e-4
        low = zf_sum_rate_bits(h, 0.0, 20e6)
        high = zf_sum_rate_bits(h, 15.0, 20e6)
        assert high > low

    def test_sum_rate_shape_validation(self):
        with pytest.raises(ValueError):
            zf_sum_rate_bits(np.zeros((4, 4)), 10.0, 20e6)

    def test_masked_subcarrier_convention_golden(self):
        """zf_sum_rate_bits normalises by the rows actually passed.

        Feeding the masked used-only subset concentrates the full transmit
        power and bandwidth in the used bins (see the function docstring);
        golden values pin both conventions at the 3-element scenario so a
        silent normalisation change cannot slip through.
        """
        from repro.experiments import build_mimo_setup, used_subcarrier_mask
        from repro.experiments.common import StudyConfig

        setup = build_mimo_setup(0)
        rx0 = setup.rx_device.position
        clients = [
            warp_v3("client-0", Point(rx0.x, rx0.y)),
            warp_v3("client-1", Point(rx0.x + 0.06, rx0.y + 0.1)),
        ]
        h = mu_mimo_matrices(
            setup.testbed, setup.tx_device, clients, ArrayConfiguration((0, 0, 0))
        )
        mask = used_subcarrier_mask()
        tx_dbm = StudyConfig().tx_power_dbm
        bw = setup.testbed.bandwidth_hz
        masked = zf_sum_rate_bits(h[mask], tx_dbm, bw)
        full = zf_sum_rate_bits(h, tx_dbm, bw)
        assert masked == pytest.approx(19.691520369121402, rel=1e-6)
        assert full == pytest.approx(19.55872045213216, rel=1e-6)
        # all power in 52 used bins beats spreading it over all 64
        assert masked > full

    def test_orthogonal_users_beat_correlated(self):
        # Equal-gain channels, orthogonal vs nearly-collinear users.
        scale = 1e-4
        ortho = np.tile(np.eye(2, dtype=complex) * scale, (8, 1, 1))
        corr = np.tile(
            np.array([[1.0, 0.0], [0.98, 0.199]], dtype=complex) * scale, (8, 1, 1)
        )
        assert zf_sum_rate_bits(ortho, 10.0, 20e6) > zf_sum_rate_bits(
            corr, 10.0, 20e6
        )


class TestMuMimoExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mu_mimo()

    def test_shapes(self, result):
        assert result.sum_rate_bits.shape == (64,)
        assert result.median_condition_db.shape == (64,)
        assert len(result.labels) == 64

    def test_configuration_effect(self, result):
        assert result.rate_gain > 1.05

    def test_conditioning_correlation(self, result):
        assert result.conditioning_rate_correlation() > 0.5

    def test_best_worst_distinct(self, result):
        assert result.best_configuration != result.worst_configuration

    def test_golden_values(self, result):
        """Pin the 3-element scenario's rates under the masked convention."""
        assert float(result.sum_rate_bits[0]) == pytest.approx(
            19.128644356859418, rel=1e-6
        )
        assert result.best_configuration == 36
        assert float(result.sum_rate_bits[36]) == pytest.approx(
            21.199621635803695, rel=1e-6
        )


class TestAlignmentExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_alignment_study()

    def test_shapes(self, result):
        assert result.alignment.shape == (64,)
        assert result.residual_inr_db.shape == (64,)

    def test_alignment_bounded(self, result):
        assert np.all(result.alignment >= 0.0)
        assert np.all(result.alignment <= 1.0)

    def test_press_moves_alignment(self, result):
        assert result.alignment_spread > 0.02

    def test_alignment_reduces_residual(self, result):
        assert result.inr_improvement_db > 0.0

    def test_alignment_anticorrelates_with_residual(self, result):
        corr = float(np.corrcoef(result.alignment, result.residual_inr_db)[0, 1])
        assert corr < 0.0
