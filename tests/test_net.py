"""Tests for repro.net (network, interference, harmonization)."""

import numpy as np
import pytest

from repro.em.geometry import Point
from repro.net.harmonization import (
    HarmonizationPlan,
    best_partition,
    opposite_selectivity_db,
    partitioned_sum_rate_bits,
    subband_contrast_db,
)
from repro.net.interference import LinkQuality, sinr_db, sum_rate_bits
from repro.net.network import NetworkPair, Node
from repro.sdr.device import warp_v3


def _pair():
    ap1 = Node(warp_v3("ap1", Point(0, 0)), role="ap", network_id=1)
    c1 = Node(warp_v3("c1", Point(1, 0)), role="client", network_id=1)
    ap2 = Node(warp_v3("ap2", Point(0, 5)), role="ap", network_id=2)
    c2 = Node(warp_v3("c2", Point(1, 5)), role="client", network_id=2)
    return NetworkPair(ap1=ap1, client1=c1, ap2=ap2, client2=c2)


class TestNetwork:
    def test_role_validation(self):
        with pytest.raises(ValueError):
            Node(warp_v3("x", Point(0, 0)), role="router")

    def test_link_names_and_interference_flag(self):
        pair = _pair()
        comms = pair.communication_links()
        inter = pair.interference_links()
        assert all(not link.is_interference for link in comms)
        assert all(link.is_interference for link in inter)
        assert comms[0].name == "ap1->c1"
        assert inter[0].name == "ap1->c2"

    def test_all_links_count(self):
        assert len(list(_pair().all_links())) == 4

    def test_pair_validation(self):
        ap1 = Node(warp_v3("ap1", Point(0, 0)), role="ap", network_id=1)
        c1 = Node(warp_v3("c1", Point(1, 0)), role="client", network_id=2)
        ap2 = Node(warp_v3("ap2", Point(0, 5)), role="ap", network_id=2)
        c2 = Node(warp_v3("c2", Point(1, 5)), role="client", network_id=2)
        with pytest.raises(ValueError):
            NetworkPair(ap1=ap1, client1=c1, ap2=ap2, client2=c2)


class TestInterference:
    def test_sinr_without_interference_is_snr(self):
        quality = LinkQuality(signal_gain=np.full(64, 1e-7))
        sinr = sinr_db(quality, 15.0, 64, 20e6)
        # No interferers: pure SNR, same for all subcarriers.
        assert np.allclose(sinr, sinr[0])

    def test_interference_reduces_sinr(self):
        clean = LinkQuality(signal_gain=np.full(64, 1e-7))
        dirty = LinkQuality(
            signal_gain=np.full(64, 1e-7),
            interference_gains=(np.full(64, 1e-8),),
        )
        assert np.all(
            sinr_db(dirty, 15.0, 64, 20e6) < sinr_db(clean, 15.0, 64, 20e6)
        )

    def test_strong_interference_dominates(self):
        quality = LinkQuality(
            signal_gain=np.full(8, 1e-7),
            interference_gains=(np.full(8, 1e-7),),
        )
        sinr = sinr_db(quality, 15.0, 64, 20e6)
        assert np.allclose(sinr, 0.0, atol=0.1)  # SIR = 0 dB

    def test_gain_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinkQuality(
                signal_gain=np.ones(8), interference_gains=(np.ones(4),)
            )

    def test_sum_rate(self):
        sinrs = [np.full(8, 0.0), np.full(8, 0.0)]  # 0 dB -> 1 bit each
        assert sum_rate_bits(sinrs) == pytest.approx(2.0)


class TestHarmonization:
    def test_contrast_sign(self):
        favour_upper = np.concatenate([np.full(26, 10.0), np.full(26, 30.0)])
        assert subband_contrast_db(favour_upper) == pytest.approx(20.0)
        assert subband_contrast_db(favour_upper[::-1]) == pytest.approx(-20.0)

    def test_opposite_selectivity_positive_for_opposite(self):
        a = np.concatenate([np.full(26, 30.0), np.full(26, 10.0)])  # favours lower
        b = np.concatenate([np.full(26, 10.0), np.full(26, 30.0)])  # favours upper
        assert opposite_selectivity_db(a, b) > 0
        assert opposite_selectivity_db(a, a) < 0

    def test_plan_masks(self):
        plan = HarmonizationPlan(boundary=20)
        mask_a, mask_b = plan.masks(52)
        assert mask_a.sum() == 20
        assert mask_b.sum() == 32
        assert not np.any(mask_a & mask_b)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            HarmonizationPlan(boundary=0)
        with pytest.raises(ValueError):
            HarmonizationPlan(boundary=52).masks(52)

    def test_partitioned_sum_rate_prefers_matched_split(self):
        # Network A strong in the lower half, B in the upper half.
        a = np.concatenate([np.full(26, 30.0), np.full(26, 5.0)])
        b = np.concatenate([np.full(26, 5.0), np.full(26, 30.0)])
        matched = partitioned_sum_rate_bits(a, b, HarmonizationPlan(boundary=26))
        mismatched = partitioned_sum_rate_bits(b, a, HarmonizationPlan(boundary=26))
        assert matched > mismatched

    def test_best_partition_finds_crossover(self):
        a = np.concatenate([np.full(20, 30.0), np.full(32, 5.0)])
        b = np.concatenate([np.full(20, 5.0), np.full(32, 30.0)])
        plan, rate = best_partition(a, b)
        assert plan.boundary == 20
        assert rate == pytest.approx(
            partitioned_sum_rate_bits(a, b, HarmonizationPlan(boundary=20))
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            partitioned_sum_rate_bits(
                np.ones(8), np.ones(4), HarmonizationPlan(boundary=2)
            )
