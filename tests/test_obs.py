"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import itertools
import json

import numpy as np
import pytest

from repro.em.antennas import IsotropicAntenna
from repro.em.geometry import Point
from repro.em.trace_cache import TraceCache
from repro.obs import reset_observability
from repro.obs.metrics import (
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    enabled,
    global_registry,
    log_bin_edges,
    merge_snapshots,
    set_enabled,
)
from repro.obs.records import (
    RunRecorder,
    SpanSummary,
    merge_samples,
    read_records,
    run_metadata,
    validate_record,
)
from repro.obs.tracing import (
    SpanTracer,
    global_tracer,
    merge_span_summaries,
)


@pytest.fixture(autouse=True)
def _clean_observability():
    """Each test starts and ends with fresh global instruments."""
    reset_observability()
    previous = set_enabled(True)
    yield
    set_enabled(previous)
    reset_observability()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_counter_and_gauge_roundtrip():
    registry = MetricsRegistry()
    counter = registry.counter("test.hits")
    counter.inc()
    counter.inc(4)
    gauge = registry.gauge("test.level")
    gauge.set(7)
    snap = registry.snapshot()
    assert snap.counters["test.hits"] == 5
    assert snap.gauges["test.level"] == 7.0


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_histogram_re_registration_with_different_edges_raises():
    registry = MetricsRegistry()
    registry.histogram("h", lo=1e-6, hi=1e3)
    with pytest.raises(ValueError):
        registry.histogram("h", lo=1e-3, hi=1e3)


def test_log_bin_edges_are_deterministic_and_sorted():
    edges_a = log_bin_edges(1e-6, 1e3, 3)
    edges_b = log_bin_edges(1e-6, 1e3, 3)
    assert edges_a == edges_b  # bit-identical, not just approximately
    assert list(edges_a) == sorted(edges_a)
    # 9 decades x 3 bins/decade spans 27 intervals -> 28 edges.
    assert len(edges_a) == 28


def test_histogram_observe_places_values_in_bins():
    hist = Histogram("h", log_bin_edges(1e-3, 1e3, 1))
    hist.observe(1e-5)  # underflow
    hist.observe(0.5)
    hist.observe(2.0)
    hist.observe(1e6)  # overflow
    state = hist.state()
    assert state.count == 4
    assert state.counts[0] == 1  # underflow bin
    assert state.counts[-1] == 1  # overflow bin
    assert sum(state.counts) == 4
    assert state.min == 1e-5
    assert state.max == 1e6
    assert state.sum == pytest.approx(1e6 + 2.5 + 1e-5)


def test_snapshot_delta_isolates_a_window():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    hist = registry.histogram("h")
    counter.inc(3)
    hist.observe(1.0)
    before = registry.snapshot()
    counter.inc(2)
    hist.observe(2.0)
    hist.observe(3.0)
    delta = registry.snapshot().delta(before)
    assert delta.counters["c"] == 2
    assert delta.histograms["h"].count == 2
    assert delta.histograms["h"].sum == pytest.approx(5.0)


def test_disabled_instruments_record_nothing():
    set_enabled(False)
    registry = MetricsRegistry()
    counter = registry.counter("c")
    hist = registry.histogram("h")
    gauge = registry.gauge("g")
    counter.inc(10)
    hist.observe(1.0)
    gauge.set(5)
    snap = registry.snapshot()
    assert snap.counters["c"] == 0
    assert snap.histograms["h"].count == 0
    assert snap.gauges["g"] == 0.0
    assert not enabled()


# ---------------------------------------------------------------------------
# Histogram / snapshot merge algebra
# ---------------------------------------------------------------------------


def _histogram_state_from(values) -> HistogramState:
    hist = Histogram("h", log_bin_edges(1e-3, 1e3, 2))
    for value in values:
        hist.observe(value)
    return hist.state()


def test_histogram_merge_is_associative_and_commutative():
    # Dyadic values make float sums exactly associative, so merged states
    # can be compared for full equality rather than approximately.
    parts = [
        _histogram_state_from([0.5, 2.0, 1024.0]),
        _histogram_state_from([0.25, 8.0]),
        _histogram_state_from([1e-5, 4.0, 0.125]),
    ]

    def merge_all(states):
        out = states[0]
        for state in states[1:]:
            out = out.merged(state)
        return out

    reference = merge_all(parts)
    for perm in itertools.permutations(parts):
        assert merge_all(list(perm)) == reference
    # Grouping permutations: (a+b)+c == a+(b+c).
    a, b, c = parts
    assert a.merged(b).merged(c) == a.merged(b.merged(c))
    assert reference.count == 8
    assert sum(reference.counts) == 8
    assert reference.min == 1e-5
    assert reference.max == 1024.0


def test_histogram_merge_rejects_mismatched_edges():
    a = Histogram("a", log_bin_edges(1e-3, 1e3, 1)).state()
    b = Histogram("b", log_bin_edges(1e-6, 1e3, 1)).state()
    with pytest.raises(ValueError):
        a.merged(b)


def test_snapshot_merge_associativity_with_grouping():
    def snap(counter_value, hist_values):
        registry = MetricsRegistry()
        registry.counter("c").inc(counter_value)
        hist = registry.histogram("h", lo=1e-3, hi=1e3, bins_per_decade=2)
        for value in hist_values:
            hist.observe(value)
        return registry.snapshot()

    parts = [snap(1, [0.5]), snap(2, [2.0, 4.0]), snap(4, [8.0])]
    for perm in itertools.permutations(parts):
        merged = merge_snapshots(perm)
        assert merged.counters["c"] == 7
        assert merged.histograms["h"].count == 4
    a, b, c = parts
    left = a.merged(b).merged(c)
    right = a.merged(b.merged(c))
    assert left.counters == right.counters
    assert left.histograms["h"] == right.histograms["h"]


def test_snapshot_dict_roundtrip():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(0.1)
    snap = registry.snapshot()
    restored = MetricsSnapshot.from_dict(snap.as_dict())
    assert restored.counters == snap.counters
    assert restored.gauges == snap.gauges
    assert restored.histograms == snap.histograms


# ---------------------------------------------------------------------------
# Span tracing
# ---------------------------------------------------------------------------


def test_span_nesting_records_parent_and_depth():
    tracer = SpanTracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    records = tracer.records()
    assert [r.name for r in records] == ["inner", "outer"]
    inner, outer = records
    assert inner.parent == "outer"
    assert inner.depth == 1
    assert outer.parent is None
    assert outer.depth == 0
    assert outer.duration_s >= inner.duration_s >= 0.0


def test_span_ring_buffer_keeps_aggregates_past_eviction():
    tracer = SpanTracer(capacity=4)
    for _ in range(10):
        with tracer.span("s"):
            pass
    assert len(tracer.records()) == 4
    summary = tracer.summaries()["s"]
    assert summary.count == 10
    assert summary.total_s >= 0.0


def test_disabled_tracer_records_nothing():
    set_enabled(False)
    tracer = SpanTracer()
    with tracer.span("s"):
        pass
    assert tracer.records() == ()
    assert tracer.summaries() == {}


def test_span_summary_merge_and_delta():
    a = SpanSummary(name="s", count=2, total_s=1.0, min_s=0.25, max_s=0.75)
    b = SpanSummary(name="s", count=3, total_s=2.0, min_s=0.125, max_s=1.5)
    merged = a.merged(b)
    assert merged.count == 5
    assert merged.total_s == pytest.approx(3.0)
    assert merged.min_s == 0.125
    assert merged.max_s == 1.5
    delta = merged.delta(a)
    assert delta.count == 3
    assert delta.total_s == pytest.approx(2.0)
    combined = merge_span_summaries([{"s": a}, {"s": b}])
    assert combined["s"] == merged


# ---------------------------------------------------------------------------
# Run records
# ---------------------------------------------------------------------------


def test_run_recorder_writes_valid_jsonl(tmp_path):
    path = tmp_path / "records.jsonl"
    with RunRecorder(
        "unit_test",
        config={"alpha": 1},
        path=str(path),
        jobs=1,
        seeds={"seed": 42},
    ):
        global_registry().counter("test.work").inc(3)
        with global_tracer().span("unit.phase"):
            pass
    records = read_records(str(path))
    assert len(records) == 1
    record = records[0]
    assert validate_record(record) == []
    assert record["experiment"] == "unit_test"
    assert record["config"] == {"alpha": 1}
    assert record["seeds"] == {"seed": 42}
    assert record["metrics"]["counters"]["test.work"] == 3
    assert "unit.phase" in record["spans"]
    assert record["wall_s"] >= 0.0


def test_run_recorder_delta_excludes_prior_activity(tmp_path):
    global_registry().counter("test.before").inc(5)
    path = tmp_path / "records.jsonl"
    with RunRecorder("unit_test", path=str(path)):
        global_registry().counter("test.during").inc(1)
    record = read_records(str(path))[0]
    assert record["metrics"]["counters"].get("test.before", 0) == 0
    assert record["metrics"]["counters"]["test.during"] == 1


def test_run_recorder_skips_write_on_exception(tmp_path):
    path = tmp_path / "records.jsonl"
    with pytest.raises(RuntimeError):
        with RunRecorder("unit_test", path=str(path)):
            raise RuntimeError("boom")
    assert not path.exists()


def test_validate_record_flags_malformed_records():
    assert validate_record({"schema_version": 1}) != []
    assert validate_record("not a dict") != []
    good = {
        "schema_version": 1,
        "experiment": "x",
        "created_at": "2026-01-01T00:00:00",
        "wall_s": 0.5,
        "jobs": None,
        "workers": 0,
        "config": {},
        "seeds": {},
        "observability_enabled": True,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": {},
        "meta": {"python": "3.x"},
    }
    assert validate_record(good) == []
    bad = dict(good, wall_s="fast")
    assert any("wall_s" in err for err in validate_record(bad))


def test_read_records_reports_bad_lines(tmp_path):
    path = tmp_path / "records.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match=r"records\.jsonl:2"):
        read_records(str(path))


def test_merge_samples_sums_counters_across_pids():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(3)
    base = registry.snapshot()
    tracer = SpanTracer()
    with tracer.span("s"):
        pass
    from repro.obs.records import ObsSample

    sample_a = ObsSample(metrics=base, spans=tracer.summaries(), pid=100)
    sample_b = ObsSample(metrics=base, spans=tracer.summaries(), pid=200)
    merged = merge_samples([sample_a, sample_b])
    assert merged.metrics.counters["c"] == 4
    # Gauges sum across distinct pids (total residency), not max.
    assert merged.metrics.gauges["g"] == 6.0
    assert merged.spans["s"].count == 2


def test_run_metadata_has_versions():
    meta = run_metadata()
    assert isinstance(meta["python"], str)
    assert isinstance(meta["numpy"], str)


def test_record_is_json_serialisable_with_numpy_config(tmp_path):
    path = tmp_path / "records.jsonl"
    with RunRecorder(
        "unit_test",
        config={"width": np.int64(4), "gain": np.float64(1.5)},
        path=str(path),
    ):
        pass
    line = path.read_text().strip()
    record = json.loads(line)
    assert record["config"] == {"width": 4, "gain": 1.5}


# ---------------------------------------------------------------------------
# TraceCache counters (satellite b)
# ---------------------------------------------------------------------------


def _tiny_tracer():
    from repro.em.raytracer import RayTracer
    from repro.em.scene import shoebox_scene

    return RayTracer(shoebox_scene(width=6.0, height=5.0), max_bounces=1)


def test_trace_cache_counts_evictions_and_resets():
    tracer = _tiny_tracer()
    cache = TraceCache(maxsize=2)
    antenna = IsotropicAntenna()
    points = [Point(1.0 + 0.1 * i, 1.0) for i in range(3)]
    tx = Point(2.0, 2.0)
    for point in points:
        cache.get_or_trace(tracer, tx, point, antenna, antenna)
    assert cache.misses == 3
    assert cache.evictions == 1
    assert len(cache) == 2
    cache.get_or_trace(tracer, tx, points[-1], antenna, antenna)
    assert cache.hits == 1
    cache.reset_counters()
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
    assert len(cache) == 2  # reset_counters keeps entries


def test_trace_cache_batch_path_hits_and_misses():
    tracer = _tiny_tracer()
    cache = TraceCache(maxsize=8)
    antenna = IsotropicAntenna()
    tx = Point(2.0, 2.0)
    rx_points = [Point(1.0, 1.0), Point(3.0, 1.5)]
    first = cache.get_or_trace_batch(tracer, tx, rx_points, antenna, antenna)
    assert cache.misses == 1 and cache.hits == 0
    second = cache.get_or_trace_batch(tracer, tx, rx_points, antenna, antenna)
    assert cache.hits == 1
    assert first is second

    snap = global_registry().snapshot()
    assert snap.counters["em.trace_cache.batch_misses"] == 1
    assert snap.counters["em.trace_cache.batch_hits"] == 1
