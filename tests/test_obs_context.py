"""Unit tests for request-scoped tracing (repro.obs.context) and handles."""

from __future__ import annotations

import os

import pytest

from repro.obs import reset_observability
from repro.obs.context import (
    RequestCapture,
    RequestContext,
    RequestTraceStore,
    bind_context,
    current_context,
    emit_request_span,
    new_request_id,
    request_span,
    stitch_timeline,
)
from repro.obs.metrics import (
    counter_handle,
    gauge_handle,
    global_registry,
    histogram_handle,
    set_enabled,
)
from repro.obs.tracing import SpanRecord, global_tracer, new_span_id


@pytest.fixture(autouse=True)
def _clean_observability():
    reset_observability()
    previous = set_enabled(True)
    yield
    set_enabled(previous)
    reset_observability()


_SPAN_OUTER = "test.outer"
_SPAN_INNER = "test.inner"
_SPAN_EXPLICIT = "test.explicit"


# ---------------------------------------------------------------------------
# Contexts and ids
# ---------------------------------------------------------------------------


def test_request_context_wire_roundtrip():
    context = RequestContext(request_id="r1", parent_span_id="abc-1")
    assert RequestContext.from_wire(context.to_wire()) == context
    bare = RequestContext(request_id="r2")
    assert RequestContext.from_wire(bare.to_wire()) == bare


def test_new_request_id_is_unique_and_pid_tagged():
    first, second = new_request_id(), new_request_id()
    assert first != second
    assert first.startswith(f"r{os.getpid():x}-")
    assert second.startswith(f"r{os.getpid():x}-")


def test_new_span_id_embeds_pid():
    sid = new_span_id()
    pid_hex, _, seq = sid.partition("-")
    assert int(pid_hex, 16) == os.getpid()
    assert seq
    assert new_span_id() != sid


def test_bind_context_scoping():
    assert current_context() is None
    context = RequestContext(request_id="r-bind")
    with bind_context(context):
        assert current_context() == context
        with bind_context(None):
            assert current_context() is None
        assert current_context() == context
    assert current_context() is None


# ---------------------------------------------------------------------------
# Request spans
# ---------------------------------------------------------------------------


def test_request_span_parents_nested_children():
    context = RequestContext(request_id="r-span")
    with bind_context(context):
        with request_span(_SPAN_OUTER):
            with request_span(_SPAN_INNER):
                pass
    records = [
        r for r in global_tracer().records() if r.request_id == "r-span"
    ]
    by_name = {r.name: r for r in records}
    assert set(by_name) == {_SPAN_OUTER, _SPAN_INNER}
    outer, inner = by_name[_SPAN_OUTER], by_name[_SPAN_INNER]
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert outer.pid == os.getpid()


def test_request_span_noop_without_context_or_when_disabled():
    with request_span(_SPAN_OUTER):
        pass
    assert global_tracer().records() == ()
    set_enabled(False)
    with bind_context(RequestContext(request_id="r-off")):
        with request_span(_SPAN_OUTER):
            pass
    assert global_tracer().records() == ()


def test_emit_request_span_explicit_ids():
    context = RequestContext(request_id="r-emit", parent_span_id="p-1")
    sid = emit_request_span(_SPAN_EXPLICIT, context, 1.0, 2.5)
    assert sid is not None
    (record,) = global_tracer().records()
    assert record.span_id == sid
    assert record.parent_id == "p-1"
    assert record.duration_s == pytest.approx(1.5)
    # Explicit span_id/parent override, e.g. shared batch-member ids.
    shared = new_span_id()
    sid2 = emit_request_span(
        _SPAN_EXPLICIT, context, 2.5, 3.0, span_id=shared, parent_span_id="x"
    )
    assert sid2 == shared
    assert global_tracer().records()[-1].parent_id == "x"


def test_emit_request_span_disabled_returns_none():
    set_enabled(False)
    context = RequestContext(request_id="r-emit-off")
    assert emit_request_span(_SPAN_EXPLICIT, context, 0.0, 1.0) is None


# ---------------------------------------------------------------------------
# Capture and store
# ---------------------------------------------------------------------------


def test_request_capture_filters_by_request_id():
    mine = RequestContext(request_id="r-mine")
    other = RequestContext(request_id="r-other")
    with RequestCapture("r-mine") as capture:
        with bind_context(mine), request_span(_SPAN_OUTER):
            pass
        with bind_context(other), request_span(_SPAN_OUTER):
            pass
    assert [r.request_id for r in capture.records] == ["r-mine"]
    # Sink removed on exit: later spans are not captured.
    with bind_context(mine), request_span(_SPAN_INNER):
        pass
    assert len(capture.records) == 1


def test_trace_store_collects_and_evicts_oldest():
    store = RequestTraceStore(capacity=2)
    for rid in ("r1", "r2", "r3"):
        store.add(
            SpanRecord(
                name=_SPAN_OUTER,
                start_s=0.0,
                duration_s=1.0,
                parent=None,
                depth=0,
                span_id=new_span_id(),
                request_id=rid,
            )
        )
    assert list(store.traces()) == ["r2", "r3"]
    drained = store.drain()
    assert set(drained) == {"r2", "r3"}
    assert len(store) == 0


def test_trace_store_sink_ignores_classic_spans():
    store = RequestTraceStore()
    store.sink(
        SpanRecord(
            name=_SPAN_OUTER, start_s=0.0, duration_s=1.0, parent=None, depth=0
        )
    )
    assert len(store) == 0


def test_trace_store_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RequestTraceStore(capacity=0)


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------


def _record(name, span_id, parent_id=None, pid=1):
    return SpanRecord(
        name=name,
        start_s=0.0,
        duration_s=1.0,
        parent=None,
        depth=0,
        span_id=span_id,
        parent_id=parent_id,
        request_id="r-stitch",
        pid=pid,
    )


def test_stitch_timeline_orders_parent_before_child_across_pids():
    # Emission order scrambled; stitching must follow parent_id only.
    records = [
        _record("task.worker", "b-1", parent_id="a-2", pid=2),
        _record("serve.request", "a-1", pid=1),
        _record("serve.batch_member", "a-2", parent_id="a-1", pid=1),
    ]
    ordered = stitch_timeline(records)
    assert [r.span_id for r in ordered] == ["a-1", "a-2", "b-1"]


def test_stitch_timeline_handles_cycles_and_orphans():
    cyclic = [
        _record("a", "s-1", parent_id="s-2"),
        _record("b", "s-2", parent_id="s-1"),
    ]
    ordered = stitch_timeline(cyclic)
    assert {r.span_id for r in ordered} == {"s-1", "s-2"}
    orphan = _record("c", "s-3", parent_id="gone")
    ordered = stitch_timeline([orphan])
    assert ordered == [orphan]  # unknown parent -> treated as a root


# ---------------------------------------------------------------------------
# Stale-proof handles (satellite: reset_observability regression)
# ---------------------------------------------------------------------------


def test_handles_survive_reset_observability():
    counter = counter_handle("test.handle.hits")
    gauge = gauge_handle("test.handle.depth")
    histogram = histogram_handle("test.handle.wait_s")
    counter.inc(3)
    gauge.set(7.0)
    histogram.observe(0.5)
    # The regression: reset replaces the registry object outright; stale
    # handles used to keep feeding the dead registry silently.
    reset_observability(clear=True)
    counter.inc(2)
    gauge.set(4.0)
    histogram.observe(0.25)
    snapshot = global_registry().snapshot()
    assert snapshot.counters["test.handle.hits"] == 2
    assert snapshot.gauges["test.handle.depth"] == 4.0
    assert snapshot.histograms["test.handle.wait_s"].count == 1


def test_handles_shared_between_factory_and_registry():
    counter = counter_handle("test.handle.shared")
    global_registry().counter("test.handle.shared").inc(5)
    counter.inc()
    assert global_registry().snapshot().counters["test.handle.shared"] == 6
