"""Observability must never perturb results (satellite c + acceptance).

Three invariants:

1. Experiment outputs are bit-identical with observability on vs off —
   instruments never touch an RNG stream or reorder work.
2. Outputs are bit-identical at ``--jobs 1`` vs ``--jobs 4`` with
   observability collecting worker samples along the way.
3. Run records aggregate correctly: the merged trace-cache traffic in a
   ``--jobs 4`` coverage record equals the sum over the parent and every
   worker sample (no double counting, nothing dropped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import reset_observability, set_enabled
from repro.obs.records import read_records, validate_record
from repro.experiments import (
    run_control_robustness,
    run_coverage_suite,
    run_fig6,
)

TINY_ROBUSTNESS = dict(
    links=("wired",),
    loss_probabilities=(0.0, 0.2),
    speeds_mph=(0.5,),
    rounds=2,
)


@pytest.fixture(autouse=True)
def _clean_observability():
    reset_observability()
    previous = set_enabled(True)
    yield
    set_enabled(previous)
    reset_observability()


def _robustness_cells(**kwargs):
    result = run_control_robustness(**TINY_ROBUSTNESS, **kwargs)
    return [
        (
            cell.link_name,
            cell.loss_probability,
            cell.speed_mph,
            cell.final_score,
            cell.total_measurements,
            cell.total_retries,
        )
        for cell in result.cells
    ]


def test_control_robustness_identical_obs_on_vs_off():
    on = _robustness_cells()
    set_enabled(False)
    reset_observability()
    off = _robustness_cells()
    assert on == off  # floats compared exactly: bit-identical


def test_control_robustness_identical_jobs_1_vs_4():
    serial = _robustness_cells(jobs=1)
    reset_observability()
    parallel = _robustness_cells(jobs=4)
    assert serial == parallel


def test_fig6_identical_obs_on_vs_off():
    on = run_fig6(repetitions=2, jobs=1)
    set_enabled(False)
    reset_observability()
    off = run_fig6(repetitions=2, jobs=1)
    assert np.array_equal(on.min_snr_change_pairs, off.min_snr_change_pairs)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(on.min_snr_per_trial, off.min_snr_per_trial)
    )
    assert on.fraction_pairs_10db_change == off.fraction_pairs_10db_change
    assert on.fraction_configs_below_20db == off.fraction_configs_below_20db


def test_fig6_identical_jobs_1_vs_4():
    serial = run_fig6(repetitions=4, jobs=1)
    reset_observability()
    parallel = run_fig6(repetitions=4, jobs=4)
    assert np.array_equal(
        serial.min_snr_change_pairs, parallel.min_snr_change_pairs
    )
    assert all(
        np.array_equal(a, b)
        for a, b in zip(serial.min_snr_per_trial, parallel.min_snr_per_trial)
    )


def test_coverage_record_merges_cache_traffic_across_workers(tmp_path):
    """Acceptance check: merged hits+misses equal the per-worker sum."""
    path = tmp_path / "coverage.jsonl"
    run_coverage_suite(
        placement_seeds=(0, 1, 2, 3),
        grid_shape=(3, 3),
        jobs=4,
        record_to=str(path),
    )
    record = read_records(str(path))[0]
    assert validate_record(record) == []
    counters = record["metrics"]["counters"]
    merged_traffic = (
        counters.get("em.trace_cache.hits", 0)
        + counters.get("em.trace_cache.misses", 0)
        + counters.get("em.trace_cache.batch_hits", 0)
        + counters.get("em.trace_cache.batch_misses", 0)
    )
    # Every placement routes its position grid through the batched cache
    # exactly once per (placement, configuration-sweep) lookup, so the
    # record must show real traffic and the counters must be integers.
    assert merged_traffic > 0
    assert all(isinstance(v, int) for v in counters.values())
    # The record's worker count reflects the pool actually used.
    assert record["jobs"] == 4
    assert 1 <= record["workers"] <= 4
    # Spans from workers survive the merge: each task ran under a span.
    assert any(name.startswith("task.") for name in record["spans"])


def test_record_equivalent_serial_vs_parallel(tmp_path):
    """The merged counter view is identical at jobs=1 and jobs=4."""
    path_serial = tmp_path / "serial.jsonl"
    path_parallel = tmp_path / "parallel.jsonl"
    run_control_robustness(**TINY_ROBUSTNESS, jobs=1, record_to=str(path_serial))
    reset_observability()
    run_control_robustness(
        **TINY_ROBUSTNESS, jobs=4, record_to=str(path_parallel)
    )
    serial = read_records(str(path_serial))[0]
    parallel = read_records(str(path_parallel))[0]
    serial_counters = serial["metrics"]["counters"]
    parallel_counters = parallel["metrics"]["counters"]
    # Deterministic work counters must agree exactly across pool sizes.
    for name in (
        "core.controller.rounds",
        "core.controller.soundings",
        "control.protocol.actuations",
        "control.protocol.transmissions",
        "core.basis.traces",
    ):
        assert serial_counters.get(name, 0) == parallel_counters.get(name, 0), name
