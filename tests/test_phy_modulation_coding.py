"""Tests for repro.phy.modulation, coding and interleaver."""

import numpy as np
import pytest

from repro.phy.coding import (
    CODE_RATE_1_2,
    CODE_RATE_2_3,
    CODE_RATE_3_4,
    ConvolutionalCode,
    get_code,
)
from repro.phy.interleaver import deinterleave, interleave, interleaver_permutation
from repro.phy.modulation import BPSK, MODULATIONS, QAM16, QAM64, QPSK, get_modulation


class TestModulation:
    @pytest.mark.parametrize("mod", [BPSK, QPSK, QAM16, QAM64])
    def test_unit_average_energy(self, mod):
        energy = np.mean(np.abs(mod.constellation) ** 2)
        assert energy == pytest.approx(1.0)

    @pytest.mark.parametrize("mod", [BPSK, QPSK, QAM16, QAM64])
    def test_roundtrip(self, mod, rng):
        bits = rng.integers(0, 2, 20 * mod.bits_per_symbol)
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)

    @pytest.mark.parametrize("mod", [QPSK, QAM16, QAM64])
    def test_gray_mapping_neighbours_differ_by_one_bit(self, mod):
        # Find the nearest neighbour of each point; Gray mapping means the
        # bit patterns differ in exactly one position.
        points = mod.constellation
        for i, p in enumerate(points):
            distances = np.abs(points - p)
            distances[i] = np.inf
            j = int(np.argmin(distances))
            assert bin(i ^ j).count("1") == 1

    def test_soft_demod_signs_match_hard(self, rng):
        bits = rng.integers(0, 2, 400)
        symbols = QAM16.modulate(bits)
        llrs = QAM16.demodulate_soft(symbols, 0.01)
        assert np.array_equal((llrs < 0).astype(int), bits)

    def test_soft_demod_scales_with_noise_var(self):
        symbols = QPSK.modulate(np.array([0, 0]))
        llr_low = QPSK.demodulate_soft(symbols, 1.0)
        llr_high = QPSK.demodulate_soft(symbols, 2.0)
        assert np.allclose(llr_low, 2.0 * llr_high)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            BPSK.modulate(np.array([0, 2]))
        with pytest.raises(ValueError):
            QAM16.modulate(np.array([0, 1, 0]))  # not a multiple of 4

    def test_registry(self):
        assert get_modulation("64-QAM") is QAM64
        with pytest.raises(KeyError):
            get_modulation("1024-QAM")
        assert set(MODULATIONS) == {"BPSK", "QPSK", "16-QAM", "64-QAM"}

    def test_invalid_bits_per_symbol(self):
        from repro.phy.modulation import Modulation

        with pytest.raises(ValueError):
            Modulation("8-PSK", 3)


class TestConvolutionalCode:
    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4"])
    def test_clean_roundtrip(self, rate, rng):
        code = get_code(rate)
        bits = rng.integers(0, 2, 300)
        decoded = code.decode_hard(code.encode(bits), 300)
        assert np.array_equal(decoded, bits)

    def test_coded_length(self):
        assert CODE_RATE_1_2.coded_length(100) == 2 * 106
        # 2/3: keep 3 of every 4 mother bits.
        assert CODE_RATE_2_3.coded_length(100) == (2 * 106) * 3 // 4
        assert CODE_RATE_3_4.coded_length(99) == (2 * 105) * 2 // 3

    def test_rate_property(self):
        assert CODE_RATE_1_2.rate == pytest.approx(0.5)
        assert CODE_RATE_2_3.rate == pytest.approx(2 / 3)
        assert CODE_RATE_3_4.rate == pytest.approx(0.75)

    def test_corrects_sparse_errors(self, rng):
        code = CODE_RATE_1_2
        bits = rng.integers(0, 2, 400)
        coded = code.encode(bits)
        corrupted = coded.copy()
        flips = rng.choice(coded.size, size=coded.size // 40, replace=False)
        corrupted[flips] ^= 1
        assert np.array_equal(code.decode_hard(corrupted, 400), bits)

    def test_soft_decoding_beats_hard(self, rng):
        # At moderate SNR, soft-decision decoding should make no more
        # errors than hard-decision decoding (statistically it makes
        # strictly fewer; we assert <=, on a fixed seed).
        code = CODE_RATE_1_2
        bits = rng.integers(0, 2, 500)
        coded = code.encode(bits)
        tx = 1.0 - 2.0 * coded.astype(float)
        noisy = tx + rng.normal(scale=0.9, size=tx.size)
        soft_errors = int(np.sum(code.decode(noisy, 500) != bits))
        hard_errors = int(
            np.sum(code.decode_hard((noisy < 0).astype(int), 500) != bits)
        )
        assert soft_errors <= hard_errors

    def test_zero_input(self):
        decoded = CODE_RATE_1_2.decode_hard(
            CODE_RATE_1_2.encode(np.zeros(50, dtype=int)), 50
        )
        assert not decoded.any()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ConvolutionalCode("5/6")

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            CODE_RATE_1_2.encode(np.array([0, 1, 2]))

    def test_depuncture_length_check(self):
        with pytest.raises(ValueError):
            CODE_RATE_3_4.decode(np.ones(7), 10)


class TestInterleaver:
    @pytest.mark.parametrize("bits_per_sc", [1, 2, 4, 6])
    def test_roundtrip(self, bits_per_sc, rng):
        n_cbps = 48 * bits_per_sc
        bits = rng.integers(0, 2, n_cbps)
        assert np.array_equal(deinterleave(interleave(bits, bits_per_sc), bits_per_sc), bits)

    def test_permutation_is_bijection(self):
        perm = interleaver_permutation(192, 4)
        assert sorted(perm.tolist()) == list(range(192))

    def test_adjacent_bits_spread(self):
        # Consecutive coded bits must not land on the same subcarrier.
        bits_per_sc = 4
        n_cbps = 48 * bits_per_sc
        perm = interleaver_permutation(n_cbps, bits_per_sc)
        subcarrier_of = perm // bits_per_sc
        assert all(
            subcarrier_of[k] != subcarrier_of[k + 1] for k in range(n_cbps - 1)
        )

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            interleaver_permutation(100, 4)  # not a multiple of 16
        with pytest.raises(ValueError):
            interleaver_permutation(192, 0)
