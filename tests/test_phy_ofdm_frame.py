"""Tests for repro.phy.ofdm, preamble, channel_est, equalizer and frame."""

import numpy as np
import pytest

from repro.em.channel import Channel
from repro.em.paths import SignalPath
from repro.phy.channel_est import estimate_channel
from repro.phy.coding import get_code
from repro.phy.equalizer import mmse, zero_forcing
from repro.phy.frame import FrameFormat, build_frame, receive_frame
from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK
from repro.phy.ofdm import DEFAULT_OFDM, OfdmParams
from repro.phy.preamble import NUM_LTF_REPEATS, ltf_spectrum, ltf_time_domain, stf_time_domain
from repro.phy.transceiver import LinkBudget, simulate_link, transmit_over_channel


class TestOfdmParams:
    def test_default_numerology(self):
        assert DEFAULT_OFDM.fft_size == 64
        assert DEFAULT_OFDM.num_data_subcarriers == 48
        assert DEFAULT_OFDM.num_pilot_subcarriers == 4
        assert DEFAULT_OFDM.symbol_samples == 80
        assert DEFAULT_OFDM.symbol_duration_s == pytest.approx(4e-6)

    def test_used_bins_count(self):
        assert DEFAULT_OFDM.used_bins().size == 52
        assert DEFAULT_OFDM.used_mask().sum() == 52

    def test_dc_not_used(self):
        assert 32 not in DEFAULT_OFDM.used_bins()

    def test_time_frequency_roundtrip(self, rng):
        spectrum = np.zeros(64, dtype=complex)
        bins = DEFAULT_OFDM.used_bins()
        spectrum[bins] = rng.standard_normal(52) + 1j * rng.standard_normal(52)
        recovered = DEFAULT_OFDM.to_frequency_domain(DEFAULT_OFDM.to_time_domain(spectrum))
        assert np.allclose(recovered, spectrum, atol=1e-10)

    def test_cyclic_prefix_is_tail_copy(self):
        spectrum = np.zeros(64, dtype=complex)
        spectrum[DEFAULT_OFDM.used_bins()] = 1.0
        samples = DEFAULT_OFDM.to_time_domain(spectrum)
        assert np.allclose(samples[:16], samples[-16:])

    def test_place_and_extract(self, rng):
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        spectrum = DEFAULT_OFDM.place(data)
        assert np.array_equal(DEFAULT_OFDM.extract_data(spectrum), data)
        assert np.all(spectrum[DEFAULT_OFDM.pilot_bins()] == 1.0)

    def test_parseval_scaling(self):
        # Unit-power spectrum -> unit-power time samples (excluding CP).
        spectrum = np.zeros(64, dtype=complex)
        spectrum[DEFAULT_OFDM.used_bins()] = 1.0
        time = DEFAULT_OFDM.to_time_domain(spectrum)[16:]
        assert np.sum(np.abs(time) ** 2) == pytest.approx(52.0, rel=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OfdmParams(fft_size=63)
        with pytest.raises(ValueError):
            OfdmParams(cyclic_prefix=64)
        with pytest.raises(ValueError):
            OfdmParams(data_offsets=(1, 2), pilot_offsets=(2,))


class TestPreamble:
    def test_ltf_occupies_used_bins_only(self):
        spectrum = ltf_spectrum(DEFAULT_OFDM)
        used = DEFAULT_OFDM.used_mask()
        assert np.all(spectrum[~used] == 0)
        assert np.all(np.abs(spectrum[used]) == 1.0)

    def test_ltf_repeats(self):
        samples = ltf_time_domain(DEFAULT_OFDM, repeats=2)
        sym = DEFAULT_OFDM.symbol_samples
        assert samples.size == 2 * sym
        assert np.allclose(samples[:sym], samples[sym:])

    def test_stf_nonzero(self):
        assert np.any(stf_time_domain(DEFAULT_OFDM) != 0)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            ltf_time_domain(DEFAULT_OFDM, repeats=0)


class TestChannelEstimation:
    def test_perfect_estimate_without_noise(self, rng):
        cfr_true = np.ones(64, dtype=complex)
        bins = DEFAULT_OFDM.used_bins()
        cfr_true[bins] = rng.standard_normal(52) + 1j * rng.standard_normal(52)
        reference = ltf_spectrum(DEFAULT_OFDM)
        received = np.stack([cfr_true * reference] * 2)
        estimate = estimate_channel(received, DEFAULT_OFDM)
        assert np.allclose(estimate.cfr[bins], cfr_true[bins])
        assert estimate.noise_var == pytest.approx(0.0, abs=1e-20)

    def test_noise_variance_estimated(self, rng):
        reference = ltf_spectrum(DEFAULT_OFDM)
        cfr_true = np.ones(64, dtype=complex)
        noise_var = 0.01
        used = DEFAULT_OFDM.used_mask()
        received = []
        for _ in range(2):
            noise = np.sqrt(noise_var / 2) * (
                rng.standard_normal(64) + 1j * rng.standard_normal(64)
            )
            received.append(cfr_true * reference + noise * used)
        estimate = estimate_channel(np.stack(received), DEFAULT_OFDM)
        assert estimate.noise_var == pytest.approx(noise_var, rel=0.5)

    def test_single_ltf_has_no_noise_estimate(self):
        reference = ltf_spectrum(DEFAULT_OFDM)
        estimate = estimate_channel(reference[None, :], DEFAULT_OFDM)
        assert estimate.noise_var is None
        with pytest.raises(ValueError):
            estimate.snr_db()

    def test_snr_reflects_channel_gain(self, rng):
        reference = ltf_spectrum(DEFAULT_OFDM)
        cfr_true = np.full(64, 2.0, dtype=complex)
        noise_var = 0.04
        used = DEFAULT_OFDM.used_mask()
        received = []
        for _ in range(2):
            noise = np.sqrt(noise_var / 2) * (
                rng.standard_normal(64) + 1j * rng.standard_normal(64)
            )
            received.append(cfr_true * reference + noise * used)
        estimate = estimate_channel(np.stack(received), DEFAULT_OFDM)
        expected_snr = 10 * np.log10(4.0 / noise_var)
        measured = np.median(estimate.snr_db()[used])
        assert measured == pytest.approx(expected_snr, abs=3.0)


class TestEqualizers:
    def test_zero_forcing_inverts(self, rng):
        cfr = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        assert np.allclose(zero_forcing(data * cfr, cfr), data)

    def test_zero_forcing_handles_null(self):
        cfr = np.array([0.0 + 0j, 1.0 + 0j])
        out = zero_forcing(np.array([1.0 + 0j, 1.0 + 0j]), cfr)
        assert np.all(np.isfinite(out))

    def test_mmse_approaches_zf_at_high_snr(self, rng):
        cfr = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        received = data * cfr
        assert np.allclose(mmse(received, cfr, 1e-12), zero_forcing(received, cfr), atol=1e-5)

    def test_mmse_attenuates_in_null(self):
        cfr = np.array([0.01 + 0j])
        received = np.array([1.0 + 0j])
        # MMSE output is bounded; ZF would blow up to 100.
        assert abs(mmse(received, cfr, 0.1)[0]) < abs(zero_forcing(received, cfr)[0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            zero_forcing(np.ones(4), np.ones(5))


class TestFrameChain:
    @pytest.mark.parametrize(
        "mod,rate",
        [(BPSK, "1/2"), (QPSK, "3/4"), (QAM16, "1/2"), (QAM64, "2/3")],
    )
    def test_loopback_noiseless(self, mod, rate, rng):
        fmt = FrameFormat(mod, get_code(rate))
        bits = rng.integers(0, 2, 600)
        tx = build_frame(bits, fmt)
        result = receive_frame(tx.samples, fmt, 600, expected_bits=bits)
        assert result.bit_errors == 0

    def test_loopback_through_multipath(self, rng, two_path_channel):
        fmt = FrameFormat(QAM16, get_code("1/2"))
        result = simulate_link(
            two_path_channel,
            fmt,
            num_info_bits=800,
            rng=rng,
            payload_rng=np.random.default_rng(9),
        )
        assert result.bit_errors == 0
        assert result.frame_ok

    def test_low_snr_breaks_link(self, rng):
        # Attenuate the channel to push SNR below decodability for 64-QAM.
        channel = Channel([SignalPath(gain=3e-7 + 0j, delay_s=0.0)])
        fmt = FrameFormat(QAM64, get_code("3/4"))
        result = simulate_link(channel, fmt, num_info_bits=800, rng=rng)
        assert result.bit_errors > 0

    def test_csi_estimate_matches_channel_shape(self, rng):
        # Delays on the 50 ns sample grid, so the tapped-delay-line channel
        # equals the exact CFR and the estimate's shape can be compared.
        channel = Channel(
            [
                SignalPath(gain=1e-3 + 0j, delay_s=50e-9),
                SignalPath(gain=0.9e-3 * np.exp(1j * 2.4), delay_s=150e-9),
            ]
        )
        fmt = FrameFormat(QPSK, get_code("1/2"))
        result = simulate_link(channel, fmt, num_info_bits=400, rng=rng)
        estimate = result.channel
        used = estimate.used_mask
        true_cfr = channel.cfr()[used]
        est_cfr = estimate.cfr[used]
        # The estimate differs by the TX power scaling; shape correlation
        # should be near-perfect.
        correlation = np.abs(np.vdot(true_cfr, est_cfr)) / (
            np.linalg.norm(true_cfr) * np.linalg.norm(est_cfr)
        )
        assert correlation > 0.98

    def test_num_data_symbols(self):
        fmt = FrameFormat(BPSK, get_code("1/2"))
        # 100 info bits -> 212 coded -> ceil(212/48) = 5 symbols.
        assert fmt.num_data_symbols(100) == 5

    def test_frame_sample_count(self):
        fmt = FrameFormat(QPSK, get_code("1/2"))
        bits = np.zeros(96, dtype=int)
        tx = build_frame(bits, fmt)
        symbols = fmt.num_data_symbols(96)
        expected = (1 + NUM_LTF_REPEATS + symbols) * fmt.params.symbol_samples
        assert tx.samples.size == expected

    def test_expected_bits_mismatch(self, rng):
        fmt = FrameFormat(BPSK, get_code("1/2"))
        bits = rng.integers(0, 2, 100)
        tx = build_frame(bits, fmt)
        with pytest.raises(ValueError):
            receive_frame(tx.samples, fmt, 100, expected_bits=bits[:50])


class TestTransmitOverChannel:
    def test_power_scaling(self, rng):
        channel = Channel([SignalPath(gain=1.0, delay_s=0.0)])
        samples = np.ones(4000, dtype=complex)
        out = transmit_over_channel(samples, channel, LinkBudget(tx_power_dbm=0.0))
        # 0 dBm = 1 mW through unit channel.
        assert np.mean(np.abs(out) ** 2) == pytest.approx(1e-3, rel=1e-6)

    def test_zero_power_rejected(self):
        channel = Channel([SignalPath(gain=1.0, delay_s=0.0)])
        with pytest.raises(ValueError):
            transmit_over_channel(np.zeros(10, dtype=complex), channel, LinkBudget())

    def test_delay_spread_causes_isi(self):
        # A channel with two taps smears an impulse across samples.
        channel = Channel(
            [SignalPath(gain=1.0, delay_s=0.0), SignalPath(gain=0.5, delay_s=150e-9)]
        )
        samples = np.zeros(32, dtype=complex)
        samples[0] = 1.0
        out = transmit_over_channel(samples, channel, LinkBudget(tx_power_dbm=0.0))
        nonzero = np.nonzero(np.abs(out) > 1e-12)[0]
        assert nonzero.size == 2
        assert nonzero[1] == 3  # 150 ns at 20 MHz = 3 samples
