"""Tests for repro.phy.snr and repro.phy.rates."""

import numpy as np
import pytest

from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK
from repro.phy.rates import (
    MCS_TABLE,
    ber_awgn,
    coded_per,
    expected_throughput_mbps,
    select_mcs,
)
from repro.phy.snr import effective_snr_db, evm, evm_to_snr_db, snr_from_ltf_pair


class TestEvm:
    def test_zero_error(self):
        ref = np.array([1 + 0j, -1 + 0j])
        assert evm(ref, ref) == 0.0

    def test_known_value(self):
        ref = np.array([1 + 0j])
        rx = np.array([1.1 + 0j])
        assert evm(rx, ref) == pytest.approx(0.1)

    def test_evm_to_snr(self):
        assert evm_to_snr_db(0.1) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            evm_to_snr_db(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evm(np.ones(3), np.ones(4))


class TestSnrFromLtf:
    def test_estimates_snr(self, rng):
        snr_db = 20.0
        signal = np.ones(2000, dtype=complex)
        sigma = np.sqrt(10 ** (-snr_db / 10) / 2)
        first = signal + sigma * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        second = signal + sigma * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        estimate = snr_from_ltf_pair(first, second)
        # Per-bin noise estimates are single-sample exponentials, so the
        # median of the dB ratio sits ~1.6 dB above truth; allow for that.
        assert np.median(estimate) == pytest.approx(snr_db, abs=3.0)
        # The linear-domain inverse mean is much tighter.
        linear = 10 ** (estimate / 10.0)
        assert 10 * np.log10(1.0 / np.mean(1.0 / linear)) == pytest.approx(
            snr_db, abs=1.5
        )


class TestEffectiveSnr:
    def test_flat_channel_identity(self):
        snr = np.full(52, 17.0)
        assert effective_snr_db(snr) == pytest.approx(17.0, abs=1e-6)

    def test_null_drags_down_effective_snr(self):
        flat = np.full(52, 30.0)
        with_null = flat.copy()
        with_null[10] = -5.0
        assert effective_snr_db(with_null) < 30.0
        # ... but far less than the arithmetic dB mean would suggest at high SNR.
        assert effective_snr_db(with_null) > with_null.mean() - 2.0

    def test_monotone_in_snr(self):
        low = effective_snr_db(np.full(8, 10.0))
        high = effective_snr_db(np.full(8, 20.0))
        assert high > low

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            effective_snr_db(np.array([]))


class TestBer:
    def test_bpsk_known_point(self):
        # BPSK at 9.6 dB -> BER ~1e-5 (textbook value ~ 3e-5 at 9.6,
        # 1e-5 at 9.6... use 9.59 dB ~ 1.0e-5 within factor 3).
        ber = float(ber_awgn(BPSK, 9.6))
        assert 3e-6 < ber < 6e-5

    def test_higher_order_needs_more_snr(self):
        snr = 12.0
        assert ber_awgn(QAM64, snr) > ber_awgn(QAM16, snr) > ber_awgn(QPSK, snr)

    def test_monotone_decreasing(self):
        snrs = np.arange(0.0, 30.0, 2.0)
        bers = np.asarray(ber_awgn(QAM16, snrs))
        assert np.all(np.diff(bers) < 0)

    def test_capped_at_half(self):
        assert float(ber_awgn(QAM64, -30.0)) <= 0.5


class TestPerAndSelection:
    def test_per_limits(self):
        mcs = MCS_TABLE[7]
        assert coded_per(mcs, 40.0) == pytest.approx(0.0, abs=1e-6)
        assert coded_per(mcs, -5.0) == pytest.approx(1.0, abs=1e-6)

    def test_per_monotone_in_snr(self):
        mcs = MCS_TABLE[4]
        pers = [coded_per(mcs, snr) for snr in np.arange(0.0, 30.0, 1.0)]
        assert all(a >= b - 1e-12 for a, b in zip(pers, pers[1:]))

    def test_select_mcs_ladder(self):
        # Higher SNR never selects a slower MCS.
        rates = [
            select_mcs(np.full(52, snr)).data_rate_mbps for snr in range(0, 36, 3)
        ]
        assert all(a <= b for a, b in zip(rates, rates[1:]))
        assert rates[0] == 6.0
        assert rates[-1] == 54.0

    def test_null_reduces_selected_rate(self):
        flat = np.full(52, 22.0)
        rate_flat = select_mcs(flat).data_rate_mbps
        dipped = flat.copy()
        dipped[20:26] = -5.0
        rate_dipped = select_mcs(dipped).data_rate_mbps
        assert rate_dipped < rate_flat

    def test_invalid_per_target(self):
        with pytest.raises(ValueError):
            select_mcs(np.full(8, 20.0), per_target=0.0)

    def test_throughput_bounded_by_rate(self):
        tput = expected_throughput_mbps(np.full(52, 50.0))
        assert tput == pytest.approx(54.0, abs=0.5)
        assert expected_throughput_mbps(np.full(52, -10.0)) < 6.0

    def test_mcs_table_consistency(self):
        for mcs in MCS_TABLE:
            # 802.11a data rates: N_DBPS per 4 us symbol.
            expected = mcs.bits_per_ofdm_symbol() / 4e-6 / 1e6
            assert expected == pytest.approx(mcs.data_rate_mbps)
