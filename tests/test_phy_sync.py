"""Tests for repro.phy.sync (packet detection, timing, CFO)."""

import numpy as np
import pytest

from repro.phy import (
    FrameFormat,
    QPSK,
    build_frame,
    get_code,
    receive_frame,
)
from repro.phy.sync import (
    correct_cfo,
    detect_packet,
    estimate_cfo,
    fine_timing,
    synchronize,
)
from repro.sdr.frontend import apply_cfo


@pytest.fixture
def frame(rng):
    fmt = FrameFormat(QPSK, get_code("1/2"))
    bits = rng.integers(0, 2, 400)
    return build_frame(bits, fmt), bits, fmt


def _embed(frame_samples, rng, gap=250, noise=0.003):
    """Surround a frame with noise-only gaps."""
    lead = noise * (rng.standard_normal(gap) + 1j * rng.standard_normal(gap))
    tail = noise * (rng.standard_normal(gap // 2) + 1j * rng.standard_normal(gap // 2))
    signal = np.concatenate([lead, frame_samples, tail])
    signal = signal + noise * (
        rng.standard_normal(signal.size) + 1j * rng.standard_normal(signal.size)
    )
    return signal


class TestDetection:
    def test_detects_frame_in_noise(self, frame, rng):
        tx, _, _ = frame
        signal = _embed(tx.samples, rng)
        index = detect_packet(signal)
        assert index is not None
        # Coarse detection lands somewhere around the preamble.
        assert abs(index - 250) < 120

    def test_no_false_alarm_on_noise(self, rng):
        noise = 0.01 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        assert detect_packet(noise, threshold=0.6) is None

    def test_threshold_validation(self, rng):
        with pytest.raises(ValueError):
            detect_packet(np.zeros(100, dtype=complex), threshold=1.5)


class TestTimingAndCfo:
    def test_fine_timing_exact(self, frame, rng):
        tx, _, _ = frame
        signal = _embed(tx.samples, rng)
        coarse = detect_packet(signal)
        start = fine_timing(signal, coarse)
        assert start == 250

    def test_cfo_estimate_accuracy(self, frame, rng):
        tx, _, _ = frame
        for true_cfo in (-5000.0, 1000.0, 4000.0):
            signal = _embed(apply_cfo(tx.samples, true_cfo, 20e6), rng)
            # Timing on the CFO-rotated signal still works (autocorrelation
            # magnitude is CFO invariant); estimate from the known start.
            cfo = estimate_cfo(signal, 250)
            assert cfo == pytest.approx(true_cfo, abs=200.0)

    def test_cfo_correction_roundtrip(self, rng):
        samples = np.exp(1j * np.linspace(0, 20, 640))
        shifted = apply_cfo(samples, 2500.0, 20e6)
        recovered = correct_cfo(shifted, 2500.0)
        assert np.allclose(recovered, samples, atol=1e-9)

    def test_cfo_too_short_raises(self):
        with pytest.raises(ValueError):
            estimate_cfo(np.zeros(50, dtype=complex), 0)


class TestFullFrontEnd:
    def test_sync_then_decode(self, frame, rng):
        tx, bits, fmt = frame
        signal = _embed(apply_cfo(tx.samples, 3000.0, 20e6), rng)
        result = synchronize(signal)
        assert result is not None
        assert result.frame_start == 250
        assert result.cfo_hz == pytest.approx(3000.0, abs=200.0)
        decoded = receive_frame(result.samples, fmt, 400, expected_bits=bits)
        assert decoded.bit_errors == 0

    def test_sync_returns_none_without_packet(self, rng):
        noise = 0.01 * (rng.standard_normal(1500) + 1j * rng.standard_normal(1500))
        assert synchronize(noise, threshold=0.6) is None

    def test_sync_with_multipath(self, frame, rng):
        from repro.em.channel import Channel
        from repro.em.paths import SignalPath
        from repro.phy.transceiver import LinkBudget, transmit_over_channel

        tx, bits, fmt = frame
        channel = Channel(
            [
                SignalPath(gain=1e-3 + 0j, delay_s=0.0),
                SignalPath(gain=4e-4 * np.exp(1.1j), delay_s=100e-9),
            ]
        )
        received = transmit_over_channel(
            tx.samples, channel, LinkBudget(tx_power_dbm=10.0), rng=rng
        )
        signal = np.concatenate(
            [np.zeros(300, dtype=complex), apply_cfo(received, 1500.0, 20e6)]
        )
        result = synchronize(signal)
        assert result is not None
        decoded = receive_frame(result.samples, fmt, 400, expected_bits=bits)
        assert decoded.bit_errors == 0
