"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import EmpiricalDistribution
from repro.core.configuration import ArrayConfiguration, ConfigurationSpace
from repro.core.element import open_stub_state, phase_shifter_states
from repro.em.geometry import Point, Segment, distance, mirror_point
from repro.em.paths import SignalPath, paths_to_cfr, paths_to_cir
from repro.mimo.channel_matrix import condition_number_db
from repro.phy.coding import get_code
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import MODULATIONS
from repro.phy.ofdm import DEFAULT_OFDM

finite_coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestGeometryProperties:
    @given(px=finite_coords, py=finite_coords)
    def test_mirror_preserves_distance_to_line(self, px, py):
        seg = Segment(Point(0.0, 0.0), Point(1.0, 0.0))
        p = Point(px, py)
        mirrored = mirror_point(p, seg)
        # Distance to the x-axis is preserved, sign flipped.
        assert mirrored.y == pytest.approx(-p.y, abs=1e-9)
        assert mirrored.x == pytest.approx(p.x, abs=1e-9)

    @given(
        ax=finite_coords, ay=finite_coords, bx=finite_coords, by=finite_coords
    )
    def test_distance_symmetric_nonnegative(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert distance(a, b) == pytest.approx(distance(b, a))
        assert distance(a, b) >= 0.0

    @given(
        ax=finite_coords,
        ay=finite_coords,
        bx=finite_coords,
        by=finite_coords,
        cx=finite_coords,
        cy=finite_coords,
    )
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-9


class TestPathProperties:
    @given(
        gains=st.lists(
            st.tuples(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=500e-9, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_cfr_magnitude_bounded_by_gain_sum(self, gains):
        paths = [
            SignalPath(gain=complex(re, im), delay_s=delay)
            for re, im, delay in gains
        ]
        freqs = np.linspace(-10e6, 10e6, 16)
        cfr = paths_to_cfr(paths, freqs)
        bound = sum(abs(p.gain) for p in paths)
        assert np.all(np.abs(cfr) <= bound + 1e-9)

    @given(
        re=st.floats(min_value=-1, max_value=1, allow_nan=False),
        im=st.floats(min_value=-1, max_value=1, allow_nan=False),
        delay=st.floats(min_value=0.0, max_value=1e-6, allow_nan=False),
    )
    def test_cir_energy_equals_path_energy(self, re, im, delay):
        path = SignalPath(gain=complex(re, im), delay_s=delay)
        cir = paths_to_cir([path], 20e6, 64)
        assert np.sum(np.abs(cir) ** 2) == pytest.approx(path.power, rel=1e-9)


class TestElementProperties:
    @given(extra=st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
    def test_open_stub_passive(self, extra):
        state = open_stub_state(extra)
        assert abs(state.reflection_coefficient()) <= 1.0

    @given(num=st.integers(min_value=1, max_value=16))
    def test_phase_shifter_unit_circle(self, num):
        for state in phase_shifter_states(num, include_off=False):
            assert abs(state.reflection_coefficient()) == pytest.approx(1.0)

    @given(
        extra=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        freq=st.floats(min_value=2.4e9, max_value=2.5e9, allow_nan=False),
    )
    def test_stub_phase_matches_delay(self, extra, freq):
        state = open_stub_state(extra)
        gamma = state.reflection_coefficient(freq)
        expected_phase = (-2 * math.pi * freq * state.extra_path_m / 299_792_458.0) % (
            2 * math.pi
        )
        actual = math.atan2(gamma.imag, gamma.real) % (2 * math.pi)
        assert actual == pytest.approx(expected_phase, abs=1e-6)


class TestConfigurationSpaceProperties:
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
        data=st.data(),
    )
    def test_rank_roundtrip(self, counts, data):
        space = ConfigurationSpace(tuple(counts))
        rank = data.draw(st.integers(min_value=0, max_value=space.size - 1))
        assert space.index_of(space.configuration_at(rank)) == rank

    @given(
        counts=st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=4)
    )
    def test_neighbor_count(self, counts):
        space = ConfigurationSpace(tuple(counts))
        config = ArrayConfiguration(tuple([0] * len(counts)))
        neighbors = list(space.neighbors(config))
        assert len(neighbors) == sum(c - 1 for c in counts)


class TestPhyProperties:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=64),
        mod_name=st.sampled_from(sorted(MODULATIONS)),
    )
    @settings(max_examples=30)
    def test_modulation_roundtrip(self, bits, mod_name):
        mod = MODULATIONS[mod_name]
        usable = (len(bits) // mod.bits_per_symbol) * mod.bits_per_symbol
        if usable == 0:
            return
        payload = np.array(bits[:usable])
        assert np.array_equal(mod.demodulate(mod.modulate(payload)), payload)

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=10, max_size=120),
        rate=st.sampled_from(["1/2", "2/3", "3/4"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_coding_roundtrip(self, bits, rate):
        code = get_code(rate)
        payload = np.array(bits)
        decoded = code.decode_hard(code.encode(payload), payload.size)
        assert np.array_equal(decoded, payload)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        bits_per_sc=st.sampled_from([1, 2, 4, 6]),
    )
    @settings(max_examples=20)
    def test_interleaver_roundtrip(self, seed, bits_per_sc):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 48 * bits_per_sc)
        assert np.array_equal(
            deinterleave(interleave(bits, bits_per_sc), bits_per_sc), bits
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20)
    def test_ofdm_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        spectrum = np.zeros(64, dtype=complex)
        bins = DEFAULT_OFDM.used_bins()
        spectrum[bins] = rng.standard_normal(52) + 1j * rng.standard_normal(52)
        recovered = DEFAULT_OFDM.to_frequency_domain(
            DEFAULT_OFDM.to_time_domain(spectrum)
        )
        assert np.allclose(recovered, spectrum, atol=1e-9)


class TestMimoProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30)
    def test_condition_number_nonnegative_and_scale_invariant(self, seed):
        rng = np.random.default_rng(seed)
        h = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        cond = condition_number_db(h)
        assert cond >= -1e-9
        assert condition_number_db(3.7 * h) == pytest.approx(cond, abs=1e-6)


class TestStatsProperties:
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_cdf_monotone_and_bounded(self, samples):
        dist = EmpiricalDistribution.from_samples(np.array(samples))
        points = np.linspace(min(samples) - 1, max(samples) + 1, 13)
        values = [dist.cdf_at(float(p)) for p in points]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0
