"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.messages import Ack, Beacon, ConfigureCommand, CsiReport, decode_message
from repro.core.configuration import ConfigurationSpace
from repro.core.learning import EpsilonGreedyBandit
from repro.em.geometry import Point
from repro.em.mobility import MovingScatterer
from repro.em.scene import Scatterer
from repro.experiments.workloads import generate_traffic
from repro.net.alignment import alignment_cosine, post_nulling_inr_db


class TestMessageProperties:
    @given(
        sequence=st.integers(min_value=0, max_value=2**16 - 1),
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=32,
            unique_by=lambda p: p[0],
        ),
    )
    def test_configure_roundtrip(self, sequence, pairs):
        ids = tuple(p[0] for p in pairs)
        states = tuple(p[1] for p in pairs)
        command = ConfigureCommand(sequence=sequence, element_ids=ids, states=states)
        assert decode_message(command.encode()) == command

    @given(
        link=st.integers(min_value=0, max_value=255),
        snrs=st.lists(
            st.floats(min_value=-80.0, max_value=80.0, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
    )
    def test_csi_report_quantisation_bound(self, link, snrs):
        report = CsiReport.from_snr_db(link, snrs)
        decoded = decode_message(report.encode())
        for original, recovered in zip(snrs, decoded.snr_db()):
            clamped = min(max(original, -64.0), 63.5)
            assert abs(recovered - clamped) <= 0.25 + 1e-9

    @given(
        sequence=st.integers(min_value=0, max_value=2**16 - 1),
        element=st.integers(min_value=0, max_value=255),
    )
    def test_ack_beacon_roundtrip(self, sequence, element):
        assert decode_message(Ack(sequence, element).encode()) == Ack(sequence, element)
        beacon = Beacon(element_id=element, battery_centivolts=sequence)
        assert decode_message(beacon.encode()) == beacon


class TestMobilityProperties:
    @given(
        x=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        y=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        vx=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        vy=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        t=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    def test_position_stays_in_bounds(self, x, y, vx, vy, t):
        mover = MovingScatterer(
            scatterer=Scatterer(Point(x, y)),
            velocity_mps=Point(vx, vy),
            bounds=(10.0, 8.0),
        )
        position = mover.position_at(t)
        assert -1e-9 <= position.x <= 10.0 + 1e-9
        assert -1e-9 <= position.y <= 8.0 + 1e-9

    @given(
        x=st.floats(min_value=0.5, max_value=9.5, allow_nan=False),
        vx=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    )
    def test_motion_continuous(self, x, vx):
        mover = MovingScatterer(
            scatterer=Scatterer(Point(x, 4.0)),
            velocity_mps=Point(vx, 0.0),
            bounds=(10.0, 8.0),
        )
        dt = 1e-3
        for t in (0.5, 5.0, 50.0):
            a = mover.position_at(t)
            b = mover.position_at(t + dt)
            assert abs(b.x - a.x) <= vx * dt + 1e-9


class TestTrafficProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_links=st.integers(min_value=1, max_value=5),
        duration=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_epochs_partition_time(self, seed, num_links, duration):
        rng = np.random.default_rng(seed)
        names = [f"l{i}" for i in range(num_links)]
        epochs = generate_traffic(names, duration, rng)
        assert epochs[0].start_s == 0.0
        total = sum(e.duration_s for e in epochs)
        assert total == pytest.approx(duration, rel=1e-9)
        for first, second in zip(epochs, epochs[1:]):
            assert second.start_s == pytest.approx(
                first.start_s + first.duration_s
            )
        for epoch in epochs:
            assert set(epoch.active_links) <= set(names)


class TestAlignmentProperties:
    @given(
        re1=st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_cosine_bounded(self, re1, data):
        n = len(re1)
        im1 = data.draw(
            st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=n, max_size=n)
        )
        re2 = data.draw(
            st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=n, max_size=n)
        )
        im2 = data.draw(
            st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=n, max_size=n)
        )
        h1 = np.array(re1) + 1j * np.array(im1)
        h2 = np.array(re2) + 1j * np.array(im2)
        if np.linalg.norm(h1) < 1e-9 or np.linalg.norm(h2) < 1e-9:
            return
        cosine = alignment_cosine(h1, h2)
        assert -1e-9 <= cosine <= 1.0 + 1e-9

    @given(
        scale=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        phase=st.floats(min_value=0.0, max_value=6.28, allow_nan=False),
    )
    def test_collinear_leaks_nothing(self, scale, phase):
        h1 = np.array([1.0 + 0.5j, -0.3 + 0.2j])
        h2 = scale * np.exp(1j * phase) * h1
        inr = post_nulling_inr_db(h1, h2, 1e-3, 1e-12)
        assert inr < -100.0


class TestBanditProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_value_estimates_bounded_by_rewards(self, seed):
        space = ConfigurationSpace((3, 3))
        bandit = EpsilonGreedyBandit(space, epsilon=0.5, forgetting=0.5, seed=seed)
        lo, hi = -5.0, 7.0
        rng = np.random.default_rng(seed)

        def reward(_config):
            return float(rng.uniform(lo, hi))

        for _ in range(60):
            bandit.step(reward)
        for state in bandit._states.values():
            assert lo - 1e-9 <= state.value <= hi + 1e-9
