"""Parallel experiment runner: determinism, seeding and equivalence.

``run_parallel`` must preserve task order and produce bit-identical
results at every worker count; the experiment drivers that adopt it
(``run_fig4``, ``run_fig6``, ``run_fig7``, ``run_coverage_suite``) must
return the same numbers serially and in parallel.  Also covers the
``used_only_mask`` deprecation and the process-wide trace cache.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.em import global_trace_cache
from repro.experiments import (
    StudyConfig,
    build_nlos_setup,
    derive_seeds,
    resolve_jobs,
    run_coverage_suite,
    run_fig4,
    run_fig6,
    run_fig7,
    run_parallel,
    used_subcarrier_mask,
)
from repro.experiments.runner import available_cpus


def _square(task: int) -> int:
    return task * task


def test_run_parallel_preserves_order_serial_and_parallel():
    tasks = list(range(17))
    expected = [t * t for t in tasks]
    assert run_parallel(_square, tasks, jobs=None) == expected
    assert run_parallel(_square, tasks, jobs=1) == expected
    assert run_parallel(_square, tasks, jobs=4) == expected


def test_run_parallel_empty_and_single():
    assert run_parallel(_square, [], jobs=4) == []
    assert run_parallel(_square, [3], jobs=4) == [9]


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == available_cpus()
    assert resolve_jobs(-1) == available_cpus()
    assert available_cpus() >= 1


def test_derive_seeds_deterministic_and_independent():
    a = derive_seeds(123, 5)
    b = derive_seeds(123, 5)
    assert len(a) == 5
    streams_a = [np.random.default_rng(s).random(4) for s in a]
    streams_b = [np.random.default_rng(s).random(4) for s in b]
    for left, right in zip(streams_a, streams_b):
        np.testing.assert_array_equal(left, right)
    # Distinct children must give distinct streams.
    assert not np.allclose(streams_a[0], streams_a[1])


def _fig4_key(result):
    return [
        (r.placement_seed, r.mean_gap_db, r.max_single_rep_gap_db)
        for r in result.placements
    ]


def test_fig4_parallel_matches_serial():
    serial = run_fig4(num_placements=3, repetitions=2)
    jobs1 = run_fig4(num_placements=3, repetitions=2, jobs=1)
    jobs4 = run_fig4(num_placements=3, repetitions=2, jobs=4)
    assert _fig4_key(serial) == _fig4_key(jobs1)
    assert _fig4_key(serial) == _fig4_key(jobs4)
    assert serial.largest_mean_change_db == jobs4.largest_mean_change_db
    assert serial.largest_single_rep_change_db == jobs4.largest_single_rep_change_db


def test_fig6_explicit_jobs_identical_across_worker_counts():
    jobs1 = run_fig6(repetitions=3, jobs=1)
    jobs4 = run_fig6(repetitions=3, jobs=4)
    np.testing.assert_array_equal(
        jobs1.min_snr_change_pairs, jobs4.min_snr_change_pairs
    )
    assert len(jobs1.min_snr_per_trial) == len(jobs4.min_snr_per_trial)
    for left, right in zip(jobs1.min_snr_per_trial, jobs4.min_snr_per_trial):
        np.testing.assert_array_equal(left, right)
    assert jobs1.fraction_pairs_10db_change == jobs4.fraction_pairs_10db_change
    assert jobs1.fraction_configs_below_20db == jobs4.fraction_configs_below_20db


def test_fig6_default_keeps_legacy_stream():
    legacy = run_fig6(repetitions=2)
    again = run_fig6(repetitions=2, jobs=None)
    np.testing.assert_array_equal(
        legacy.min_snr_change_pairs, again.min_snr_change_pairs
    )


def test_fig7_parallel_matches_serial():
    serial = run_fig7(max_seeds=4, min_total_contrast_db=0.0)
    parallel = run_fig7(max_seeds=4, min_total_contrast_db=0.0, jobs=4)
    assert serial.placement_seed == parallel.placement_seed
    assert serial.label_a == parallel.label_a
    assert serial.label_b == parallel.label_b
    assert serial.contrast_a_db == parallel.contrast_a_db
    assert serial.contrast_b_db == parallel.contrast_b_db
    np.testing.assert_array_equal(serial.snr_a, parallel.snr_a)


def test_coverage_suite_parallel_matches_serial():
    serial = run_coverage_suite(placement_seeds=(0, 1), grid_shape=(2, 3))
    parallel = run_coverage_suite(
        placement_seeds=(0, 1), grid_shape=(2, 3), jobs=2
    )
    assert len(serial) == len(parallel) == 2
    for left, right in zip(serial, parallel):
        np.testing.assert_array_equal(left.baseline_db, right.baseline_db)
        np.testing.assert_array_equal(left.per_position_db, right.per_position_db)
        np.testing.assert_array_equal(left.joint_db, right.joint_db)
        assert left.joint_configuration == right.joint_configuration


def test_used_only_mask_alias_warns_and_flows_through():
    setup = build_nlos_setup(2, StudyConfig())
    mask = used_subcarrier_mask()
    with pytest.warns(DeprecationWarning, match="used_only_mask is deprecated"):
        via_alias = setup.testbed.sweep(
            setup.tx_device, setup.rx_device, repetitions=1, used_only_mask=mask
        )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        via_new = setup.testbed.sweep(
            setup.tx_device, setup.rx_device, repetitions=1, used_mask=mask
        )
    np.testing.assert_array_equal(via_alias.snr_db, via_new.snr_db)


def test_global_trace_cache_shares_traces_across_testbeds():
    cache = global_trace_cache()
    cache.clear()
    first = build_nlos_setup(2, StudyConfig())
    first.testbed.environment_paths(first.tx_device, first.rx_device)
    misses_after_first = cache.misses
    assert misses_after_first >= 1
    # A rebuilt testbed for the same placement hits the value-keyed cache.
    second = build_nlos_setup(2, StudyConfig())
    paths_second = second.testbed.environment_paths(
        second.tx_device, second.rx_device
    )
    assert cache.hits >= 1
    assert cache.misses == misses_after_first
    paths_first = first.testbed.environment_paths(first.tx_device, first.rx_device)
    assert paths_first == paths_second
