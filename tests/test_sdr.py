"""Tests for repro.sdr (devices, frontend, timesync, testbed)."""

import numpy as np
import pytest

from repro.constants import WAVELENGTH_M
from repro.core.array import PressArray
from repro.core.configuration import ArrayConfiguration
from repro.core.element import omni_element
from repro.em.geometry import Point
from repro.em.scene import blocker_between, shoebox_scene
from repro.sdr.device import SdrDevice, usrp_n210, usrp_x310, warp_v3
from repro.sdr.frontend import (
    FrontendImpairments,
    apply_cfo,
    apply_iq_imbalance,
    apply_phase_noise,
)
from repro.sdr.testbed import Testbed
from repro.sdr.timesync import (
    Clock,
    SweepTiming,
    max_unsynced_interval_s,
    sync_clocks,
)


class TestDevices:
    def test_factories(self):
        warp = warp_v3("w", Point(0, 0))
        n210 = usrp_n210("n", Point(1, 0))
        x310 = usrp_x310("x", Point(2, 0))
        assert warp.model == "WARP v3"
        assert n210.num_chains == 1
        assert x310.num_chains == 2

    def test_x310_antenna_spacing(self):
        x310 = usrp_x310("x", Point(0, 0), antenna_spacing_m=WAVELENGTH_M / 2)
        spacing = x310.chains[1].position.x - x310.chains[0].position.x
        assert spacing == pytest.approx(WAVELENGTH_M / 2)

    def test_moved_to_preserves_geometry(self):
        x310 = usrp_x310("x", Point(0, 0), antenna_spacing_m=0.1)
        moved = x310.moved_to(Point(5, 5))
        assert moved.position == Point(5, 5)
        assert moved.chains[1].position.x - moved.chains[0].position.x == pytest.approx(0.1)

    def test_device_requires_chains(self):
        with pytest.raises(ValueError):
            SdrDevice(name="empty", chains=())

    def test_x310_invalid_spacing(self):
        with pytest.raises(ValueError):
            usrp_x310("x", Point(0, 0), antenna_spacing_m=0.0)


class TestFrontend:
    def test_cfo_rotates(self):
        samples = np.ones(100, dtype=complex)
        out = apply_cfo(samples, 1000.0, 20e6)
        assert np.abs(out[50]) == pytest.approx(1.0)
        assert np.angle(out[50]) == pytest.approx(2 * np.pi * 1000 * 50 / 20e6)

    def test_zero_cfo_identity(self):
        samples = np.arange(10).astype(complex)
        assert np.allclose(apply_cfo(samples, 0.0, 20e6), samples)

    def test_phase_noise_preserves_magnitude(self, rng):
        samples = np.ones(1000, dtype=complex)
        out = apply_phase_noise(samples, 100.0, 20e6, rng)
        assert np.allclose(np.abs(out), 1.0)

    def test_phase_noise_zero_linewidth(self, rng):
        samples = np.ones(10, dtype=complex)
        assert np.allclose(apply_phase_noise(samples, 0.0, 20e6, rng), samples)

    def test_iq_imbalance_identity_when_matched(self):
        samples = np.array([1 + 2j, -0.5 + 0.3j])
        assert np.allclose(apply_iq_imbalance(samples), samples)

    def test_iq_imbalance_creates_image(self):
        samples = np.exp(1j * np.linspace(0, 10, 256))
        out = apply_iq_imbalance(samples, gain_mismatch_db=1.0, phase_mismatch_rad=0.05)
        # Image component = correlation with conj(x).
        image = abs(np.vdot(np.conj(samples), out)) / samples.size
        assert image > 0.01

    def test_bundle_applies_all(self, rng):
        impairments = FrontendImpairments(
            cfo_hz=500.0, phase_noise_linewidth_hz=10.0, iq_gain_mismatch_db=0.5
        )
        samples = np.ones(256, dtype=complex)
        out = impairments.apply(samples, 20e6, rng)
        assert out.shape == samples.shape
        assert not np.allclose(out, samples)


class TestTimesync:
    def test_clock_drift(self):
        clock = Clock(offset_s=0.0, drift_ppm=10.0)
        assert clock.error_at(1.0) == pytest.approx(10e-6)

    def test_sync_collapses_offset(self):
        clock = Clock(offset_s=0.5, drift_ppm=10.0)
        synced = sync_clocks(clock, true_time_s=100.0, residual_s=1e-6)
        assert synced.error_at(100.0) == pytest.approx(1e-6, abs=1e-9)

    def test_drift_reaccumulates_after_sync(self):
        clock = sync_clocks(Clock(drift_ppm=10.0), true_time_s=0.0)
        assert clock.error_at(10.0) > clock.error_at(1.0)

    def test_max_unsynced_interval(self):
        # 10 ppm drift, 100 us tolerance -> 10 s.
        assert max_unsynced_interval_s(10.0, 100e-6) == pytest.approx(10.0)
        assert max_unsynced_interval_s(0.0, 1e-6) == np.inf

    def test_sweep_timing_matches_paper(self):
        timing = SweepTiming()  # 64 configs, 5 s total
        assert timing.sweep_duration_s == pytest.approx(5.0)
        # The prototype sweep exceeds even the stationary coherence time.
        assert timing.exceeds_coherence(0.089)

    def test_fast_sweep_within_coherence(self):
        timing = SweepTiming(num_configurations=64, per_configuration_s=1e-3)
        assert not timing.exceeds_coherence(0.089)


class TestTestbed:
    @pytest.fixture
    def testbed(self, rng):
        scene = shoebox_scene(8.0, 6.0, num_scatterers=3, rng=rng)
        scene = scene.with_obstacles(blocker_between(Point(2, 3), Point(6, 3)))
        array = PressArray.from_elements(
            [omni_element(Point(3.2, 4.4), name="e0"), omni_element(Point(4.9, 4.6), name="e1")]
        )
        return Testbed(scene=scene, array=array)

    @pytest.fixture
    def devices(self):
        return warp_v3("tx", Point(2, 3)), warp_v3("rx", Point(6, 3))

    def test_environment_cache(self, testbed, devices):
        tx, rx = devices
        first = testbed.environment_paths(tx, rx)
        second = testbed.environment_paths(tx, rx)
        assert first is second

    def test_measure_csi_shapes(self, testbed, devices, rng):
        tx, rx = devices
        obs = testbed.measure_csi(tx, rx, ArrayConfiguration((0, 0)), rng=rng)
        assert obs.snr_db.shape == (64,)

    def test_sweep_shape(self, testbed, devices, rng):
        tx, rx = devices
        sweep = testbed.sweep(tx, rx, repetitions=2, rng=rng)
        assert sweep.snr_db.shape == (2, 16, 64)
        assert sweep.num_repetitions == 2
        assert sweep.num_configurations == 16
        assert sweep.used_mask.sum() == 52

    def test_sweep_configuration_order(self, testbed, devices):
        tx, rx = devices
        sweep = testbed.sweep(tx, rx, repetitions=1)
        space = testbed.array.configuration_space()
        assert sweep.configurations == tuple(space.all_configurations())

    def test_configuration_changes_channel(self, testbed, devices):
        tx, rx = devices
        a = testbed.measure_csi(tx, rx, ArrayConfiguration((0, 0)))
        b = testbed.measure_csi(tx, rx, ArrayConfiguration((2, 2)))
        assert not np.allclose(a.snr_db, b.snr_db)

    def test_mimo_matrices_shape(self, testbed, rng):
        tx = usrp_x310("mtx", Point(2, 3))
        rx = usrp_x310("mrx", Point(6, 3))
        h = testbed.mimo_matrices(tx, rx, ArrayConfiguration((0, 0)))
        assert h.shape == (64, 2, 2)

    def test_mimo_estimation_error_requires_rng(self, testbed):
        tx = usrp_x310("mtx", Point(2, 3))
        rx = usrp_x310("mrx", Point(6, 3))
        with pytest.raises(ValueError):
            testbed.mimo_matrices(
                tx, rx, ArrayConfiguration((0, 0)), estimation_error_std=0.1
            )

    def test_drift_varies_measurements(self, rng):
        scene = shoebox_scene(8.0, 6.0)
        array = PressArray.from_elements([omni_element(Point(3.2, 4.4), name="e0")])
        drifty = Testbed(scene=scene, array=array, drift_phase_rad=0.1)
        tx, rx = warp_v3("tx", Point(2, 3)), warp_v3("rx", Point(6, 3))
        # Without estimation noise the only variation is ambient drift; two
        # channels drawn with the same configuration should differ.
        a = drifty.channel(tx, rx, ArrayConfiguration((0,)), rng=rng).cfr()
        b = drifty.channel(tx, rx, ArrayConfiguration((0,)), rng=rng).cfr()
        assert not np.allclose(a, b)

    def test_no_drift_deterministic(self, testbed, devices, rng):
        tx, rx = devices
        a = testbed.channel(tx, rx, ArrayConfiguration((0, 0)), rng=rng).cfr()
        b = testbed.channel(tx, rx, ArrayConfiguration((0, 0)), rng=rng).cfr()
        assert np.allclose(a, b)

    def test_invalid_drift(self):
        scene = shoebox_scene(4.0, 4.0)
        array = PressArray.from_elements([omni_element(Point(2, 2), name="e")])
        with pytest.raises(ValueError):
            Testbed(scene=scene, array=array, drift_phase_rad=-0.1)
