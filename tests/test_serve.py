"""Serving layer: determinism, batching, backpressure, session LRU."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.metrics import global_registry
from repro.serve import (
    REJECTED,
    EnvironmentService,
    EvaluateRequest,
    ScenarioSpec,
    ServiceClient,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    mixed_requests,
    run_closed_loop,
    run_open_loop,
)

NLOS = ScenarioSpec(kind="nlos", placement=0)


def _run(coroutine):
    return asyncio.run(coroutine)


async def _serve_all(config: ServiceConfig, requests, concurrency: int):
    async with EnvironmentService(config) as service:
        load = await run_closed_loop(service.submit, requests, concurrency)
    return load.responses


# ---------------------------------------------------------------------------
# Determinism: interleaved clients == serial issue, at any batching window
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("window_s", [0.0, 0.001, 0.005])
def test_concurrent_serving_bit_identical_to_serial(window_s):
    requests = mixed_requests(
        [NLOS, ScenarioSpec(kind="nlos", placement=1)],
        num_requests=24,
        seed=42,
    )
    serial = _run(
        _serve_all(
            ServiceConfig(batch_window_s=0.0, max_batch=1), requests, 1
        )
    )
    concurrent = _run(
        _serve_all(
            ServiceConfig(batch_window_s=window_s, max_batch=64), requests, 8
        )
    )
    # Frozen dataclasses of floats/tuples: == is bit-exact equality.
    assert concurrent == serial


def test_seeded_sweep_is_reproducible_across_services():
    async def sweep_once():
        async with EnvironmentService() as service:
            client = ServiceClient(service)
            return await client.sweep(
                NLOS, repetitions=2, seed=9, drift_phase_rad=0.08
            )

    assert _run(sweep_once()) == _run(sweep_once())


def test_search_request_matches_direct_search():
    from repro.core.objectives import MeanSnrObjective
    from repro.experiments import build_nlos_setup, used_subcarrier_mask
    from repro.experiments.large_array import make_searcher

    async def served():
        async with EnvironmentService() as service:
            return await ServiceClient(service).search(NLOS, "rfocus", seed=3)

    result = _run(served())

    setup = build_nlos_setup(0)
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    direct = make_searcher("rfocus", 3).search_basis(
        basis,
        MeanSnrObjective(),
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=used_subcarrier_mask(),
    )
    assert result.best_configuration == direct.best.indices
    assert result.best_score_db == direct.best_score
    assert result.num_evaluations == direct.num_evaluations


# ---------------------------------------------------------------------------
# Micro-batching
# ---------------------------------------------------------------------------


def test_concurrent_requests_coalesce_into_fewer_batches():
    before = global_registry().snapshot()

    async def drive():
        async with EnvironmentService(
            ServiceConfig(batch_window_s=0.0, max_batch=64)
        ) as service:
            client = ServiceClient(service)
            await client.actuate(NLOS, (0, 0, 0))  # session warm-up
            await asyncio.gather(
                *(client.actuate(NLOS, (i % 4, 0, 0)) for i in range(16))
            )

    _run(drive())
    delta = global_registry().snapshot().delta(before)
    # 17 requests must not have taken 17 batches: the 16 concurrent
    # actuations coalesce (worst case a couple of flushes).
    assert delta.counters["serve.requests"] == 17
    assert delta.counters["serve.batches"] <= 5
    assert delta.counters["serve.batched_requests"] == 17


def test_max_batch_flushes_without_waiting_for_window():
    async def drive():
        # A 60 s window would hang the test unless max_batch forces the
        # flush; asyncio.wait_for guards against regression.
        async with EnvironmentService(
            ServiceConfig(batch_window_s=60.0, max_batch=2)
        ) as service:
            client = ServiceClient(service)
            return await asyncio.wait_for(
                asyncio.gather(
                    *(client.actuate(NLOS, (i % 4, 0, 0)) for i in range(4))
                ),
                timeout=30.0,
            )

    results = _run(drive())
    assert len(results) == 4


def test_invalid_configuration_fails_only_its_own_request():
    async def drive():
        async with EnvironmentService(
            ServiceConfig(batch_window_s=0.0, max_batch=64)
        ) as service:
            client = ServiceClient(service)
            await client.actuate(NLOS, (0, 0, 0))  # build session first
            good = client.actuate(NLOS, (1, 2, 3))
            bad = client.actuate(NLOS, (1, 2))  # wrong element count
            worse = client.actuate(NLOS, (9, 0, 0))  # state out of range
            return await asyncio.gather(
                good, bad, worse, return_exceptions=True
            )

    good, bad, worse = _run(drive())
    assert isinstance(bad, ValueError)
    assert isinstance(worse, ValueError)
    assert good.mean_used_snr_db == good.mean_used_snr_db  # a real number


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_overload_rejects_excess_and_keeps_serving():
    async def drive():
        async with EnvironmentService(
            ServiceConfig(batch_window_s=0.2, max_batch=1024, max_pending=4)
        ) as service:
            client = ServiceClient(service)
            submissions = [
                asyncio.ensure_future(client.actuate(NLOS, (0, 0, 0)))
                for _ in range(10)
            ]
            # Submissions past max_pending=4 reject synchronously while
            # the first batch is still inside its window.
            outcomes = await asyncio.gather(
                *submissions, return_exceptions=True
            )
            after = await client.actuate(NLOS, (0, 0, 0))
            return outcomes, after

    outcomes, after = _run(drive())
    rejected = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
    served = [o for o in outcomes if not isinstance(o, Exception)]
    assert len(rejected) == 6
    assert len(served) == 4
    assert after.mean_used_snr_db == served[0].mean_used_snr_db


def test_no_rejections_below_overload_threshold():
    requests = mixed_requests([NLOS], num_requests=32, seed=5)

    async def drive():
        async with EnvironmentService(
            ServiceConfig(max_pending=256)
        ) as service:
            return await run_closed_loop(service.submit, requests, 16)

    load = _run(drive())
    assert load.rejected == 0
    assert load.failed == 0
    assert load.completed == len(requests)


def test_closed_service_raises_service_closed():
    async def drive():
        service = EnvironmentService()
        client = ServiceClient(service)
        await client.actuate(NLOS, (0, 0, 0))
        await service.close()
        with pytest.raises(ServiceClosed):
            await client.actuate(NLOS, (0, 0, 0))

    _run(drive())


# ---------------------------------------------------------------------------
# Scenario-sharded sessions
# ---------------------------------------------------------------------------


def test_session_lru_hits_and_evictions():
    first = ScenarioSpec(kind="nlos", placement=0)
    second = ScenarioSpec(kind="nlos", placement=1)

    async def drive():
        async with EnvironmentService(
            ServiceConfig(session_capacity=1)
        ) as service:
            client = ServiceClient(service)
            a0 = await client.actuate(first, (0, 0, 0))
            await client.actuate(first, (0, 0, 0))  # hit
            await client.actuate(second, (0, 0, 0))  # evicts first
            a1 = await client.actuate(first, (0, 0, 0))  # rebuild
            return service, a0, a1

    service, a0, a1 = _run(drive())
    assert service.session_hits == 1
    assert service.session_misses == 3
    assert service.session_evictions == 2
    assert service.sessions == 1
    # A rebuilt session computes the identical answer.
    assert a0 == a1


def test_rejected_sentinel_and_open_loop_loadgen():
    requests = mixed_requests([NLOS], num_requests=12, seed=11)

    async def drive():
        async with EnvironmentService() as service:
            return await run_open_loop(
                service.submit, requests, rate_hz=2000.0, seed=1
            )

    load = _run(drive())
    assert load.completed == len(requests)
    assert load.rejected == 0
    assert REJECTED not in load.responses


def test_mixed_requests_deterministic_and_skewed():
    scenarios = [ScenarioSpec(kind="nlos", placement=p) for p in range(4)]
    first = mixed_requests(scenarios, 64, seed=3, skew=2.0)
    second = mixed_requests(scenarios, 64, seed=3, skew=2.0)
    assert first == second
    placements = [r.scenario.placement for r in first]
    # Zipf skew concentrates traffic on the first scenario.
    assert placements.count(0) > len(placements) / 2


def test_evaluate_request_requires_configurations():
    async def drive():
        async with EnvironmentService() as service:
            with pytest.raises(ValueError):
                await service.submit(
                    EvaluateRequest(scenario=NLOS, configurations=())
                )

    _run(drive())


# ---------------------------------------------------------------------------
# Joint multi-link requests
# ---------------------------------------------------------------------------


def _joint_links():
    from repro.serve import JointLinkSpec

    return (
        JointLinkSpec(name="a"),
        JointLinkSpec(name="b", dx_m=0.4, dy_m=0.2, weight=2.0),
    )


def test_joint_request_matches_direct_optimize_joint():
    from repro.core.joint import BasisLink, optimize_joint
    from repro.core.objectives import MeanSnrObjective, joint_aggregate
    from repro.em.geometry import Point
    from repro.experiments import build_nlos_setup, used_subcarrier_mask
    from repro.experiments.large_array import make_searcher

    links = _joint_links()

    async def served():
        async with EnvironmentService() as service:
            return await ServiceClient(service).joint_optimize(
                NLOS, links, strategy="joint", searcher="greedy", seed=3
            )

    result = _run(served())

    setup = build_nlos_setup(0)
    rx0 = setup.rx_device.position
    bases = setup.testbed.bases_for_points(
        setup.tx_device,
        [Point(rx0.x + s.dx_m, rx0.y + s.dy_m) for s in links],
        setup.rx_device.chains[0].antenna,
    )
    direct = optimize_joint(
        [
            BasisLink(
                name=spec.name,
                evaluator=basis.evaluator(
                    MeanSnrObjective(),
                    tx_power_dbm=setup.tx_device.tx_power_dbm,
                    noise_figure_db=setup.rx_device.noise_figure_db,
                    mask=used_subcarrier_mask(),
                ),
                weight=spec.weight,
            )
            for spec, basis in zip(links, bases)
        ],
        searcher=make_searcher("greedy", 3),
        aggregate=joint_aggregate("mean"),
    )
    assert result.strategy == "joint"
    assert result.num_distinct_configurations == 1
    for spec, config, score in zip(
        links, result.configurations, result.scores_db
    ):
        assert config == direct.assignments[spec.name].indices
        assert score == direct.per_link_scores[spec.name]
    assert result.num_measurements == direct.num_measurements


@pytest.mark.parametrize("window_s", [0.0, 0.005])
def test_joint_requests_bit_identical_at_any_batch_window(window_s):
    from repro.serve import JointOptimizeRequest

    links = _joint_links()
    requests = [
        JointOptimizeRequest(
            scenario=NLOS, links=links, strategy=strategy, searcher="rfocus"
        )
        for strategy in ("joint", "per-link", "hybrid")
    ] * 2

    serial = _run(
        _serve_all(
            ServiceConfig(batch_window_s=0.0, max_batch=1), requests, 1
        )
    )
    concurrent = _run(
        _serve_all(
            ServiceConfig(batch_window_s=window_s, max_batch=64), requests, 6
        )
    )
    assert concurrent == serial
    # identical requests within one run agree too
    assert serial[:3] == serial[3:]


def test_joint_request_validation():
    from repro.serve import JointLinkSpec, JointOptimizeRequest

    async def drive():
        async with EnvironmentService() as service:
            with pytest.raises(ValueError):
                await service.submit(
                    JointOptimizeRequest(scenario=NLOS, links=())
                )
            with pytest.raises(ValueError):
                await service.submit(
                    JointOptimizeRequest(
                        scenario=NLOS,
                        links=(
                            JointLinkSpec(name="a"),
                            JointLinkSpec(name="a", dx_m=0.1),
                        ),
                    )
                )
            with pytest.raises(ValueError):
                await service.submit(
                    JointOptimizeRequest(
                        scenario=NLOS,
                        links=(JointLinkSpec(name="a"),),
                        strategy="static",
                    )
                )

    _run(drive())
