"""Request-scoped tracing through the serving stack, end to end.

Covers the ISSUE acceptance criteria: complete cross-process request
timelines (client submit → shard enqueue → batch flush → worker
evaluate), bit-identical responses with observability on or off and at
any ``search_jobs``, per-type latency histograms, schema-v2 run records
carrying ``request_traces``, and the service-side telemetry stream.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.obs import reset_observability
from repro.obs.context import stitch_timeline
from repro.obs.export import read_telemetry
from repro.obs.metrics import global_registry, set_enabled
from repro.obs.records import (
    SCHEMA_VERSION,
    RunRecorder,
    read_records,
    validate_record,
)
from repro.obs.slo import SloPolicy
from repro.serve import (
    EnvironmentService,
    EvaluateRequest,
    ScenarioSpec,
    ServiceClient,
    ServiceConfig,
    mixed_requests,
    run_closed_loop,
)

NLOS = ScenarioSpec(kind="nlos", placement=0)


@pytest.fixture(autouse=True)
def _clean_observability():
    reset_observability()
    previous = set_enabled(True)
    yield
    set_enabled(previous)
    reset_observability()


def _run(coroutine):
    return asyncio.run(coroutine)


async def _serve_traced(config: ServiceConfig, requests, concurrency=4):
    async with EnvironmentService(config) as service:
        load = await run_closed_loop(service.submit, requests, concurrency)
        traces = service.request_traces()
    return load, traces


def _names(records):
    return [record.name for record in stitch_timeline(records)]


# ---------------------------------------------------------------------------
# Timeline reconstruction (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_inline_request_timeline_is_complete():
    requests = mixed_requests([NLOS], num_requests=6, seed=1)
    load, traces = _run(
        _serve_traced(ServiceConfig(trace_sample=1), requests)
    )
    assert load.completed == len(requests)
    assert len(traces) == len(requests)
    for records in traces.values():
        ordered = stitch_timeline(records)
        names = [record.name for record in ordered]
        assert names[:1] == ["serve.request"]
        assert "serve.queue" in names
        assert "serve.batch_member" in names
        root = ordered[0]
        assert root.parent_id is None
        # Every non-root span hangs off the request's own tree.
        ids = {record.span_id for record in ordered}
        for record in ordered[1:]:
            assert record.parent_id in ids


def test_cross_process_search_timeline_stitches():
    async def serve():
        async with EnvironmentService(
            ServiceConfig(search_jobs=2)
        ) as service:
            client = ServiceClient(service)
            with ServiceClient.bind("req-x"):
                await client.search(NLOS, "rfocus", seed=3)
            return service.request_traces()

    traces = _run(serve())
    ordered = stitch_timeline(traces["req-x"])
    names = [record.name for record in ordered]
    assert names == [
        "serve.request",
        "serve.queue",
        "serve.batch_member",
        "task.worker",
    ]
    worker = ordered[-1]
    member = ordered[-2]
    # The worker span was minted in another process yet links by id.
    assert worker.pid != os.getpid()
    assert worker.parent_id == member.span_id
    assert worker.request_id == "req-x"


def test_batch_members_share_one_batch_span_id():
    requests = [
        EvaluateRequest(scenario=NLOS, configurations=((0, 0, 0),)),
        EvaluateRequest(scenario=NLOS, configurations=((1, 1, 1),)),
    ]
    load, traces = _run(
        _serve_traced(
            ServiceConfig(
                batch_window_s=0.005, max_batch=64, trace_sample=1
            ),
            requests,
        )
    )
    assert load.completed == 2
    member_ids = set()
    for records in traces.values():
        for record in records:
            if record.name == "serve.batch_member":
                member_ids.add(record.span_id)
    assert len(member_ids) == 1  # both rode the same flush


def test_trace_structure_identical_across_jobs():
    async def structure(jobs):
        async with EnvironmentService(
            ServiceConfig(search_jobs=jobs)
        ) as service:
            client = ServiceClient(service)
            with ServiceClient.bind("req-j"):
                result = await client.search(NLOS, "rfocus", seed=3)
            return result, _names(service.request_traces()["req-j"])

    inline_result, inline_names = _run(structure(1))
    pooled_result, pooled_names = _run(structure(2))
    assert inline_result == pooled_result  # bit-identical payloads
    assert inline_names == pooled_names  # same span skeleton


def test_responses_bit_identical_with_obs_off():
    requests = mixed_requests([NLOS], num_requests=10, seed=7)

    async def serve():
        async with EnvironmentService(ServiceConfig()) as service:
            load = await run_closed_loop(service.submit, requests, 4)
        return load.responses

    on = _run(serve())
    set_enabled(False)
    off = _run(serve())
    assert on == off


def test_tracing_disabled_collects_nothing():
    set_enabled(False)
    requests = mixed_requests([NLOS], num_requests=4, seed=2)
    load, traces = _run(_serve_traced(ServiceConfig(), requests))
    assert load.completed == len(requests)
    assert traces == {}


def test_trace_capacity_evicts_oldest_requests():
    requests = mixed_requests([NLOS], num_requests=8, seed=5)
    _, traces = _run(
        _serve_traced(
            ServiceConfig(trace_capacity=3, trace_sample=1),
            requests,
            concurrency=1,
        )
    )
    assert len(traces) == 3


# ---------------------------------------------------------------------------
# Trace sampling
# ---------------------------------------------------------------------------


def test_trace_sampling_selects_every_nth_request():
    requests = mixed_requests([NLOS], num_requests=8, seed=11)
    load, traces = _run(
        _serve_traced(
            ServiceConfig(trace_sample=4), requests, concurrency=1
        )
    )
    assert load.completed == len(requests)
    assert len(traces) == 2  # requests 0 and 4 of 8
    for records in traces.values():
        assert [r.name for r in stitch_timeline(records)][:1] == [
            "serve.request"
        ]


def test_trace_sample_zero_skips_spans_but_keeps_latency():
    requests = mixed_requests([NLOS], num_requests=6, seed=12)
    load, traces = _run(
        _serve_traced(ServiceConfig(trace_sample=0), requests)
    )
    assert load.completed == len(requests)
    assert traces == {}
    snapshot = global_registry().snapshot()
    observed = sum(
        state.count
        for name, state in snapshot.histograms.items()
        if name.endswith(".request_latency_s")
    )
    assert observed == len(requests)


def test_bound_context_is_traced_even_when_sampling_off():
    async def serve():
        async with EnvironmentService(
            ServiceConfig(trace_sample=0)
        ) as service:
            client = ServiceClient(service)
            with ServiceClient.bind("req-forced"):
                await client.evaluate(NLOS, ((0, 0, 0),))
            return service.request_traces()

    traces = _run(serve())
    assert set(traces) == {"req-forced"}


def test_trace_sample_rejects_negative():
    with pytest.raises(ValueError, match="trace_sample"):
        ServiceConfig(trace_sample=-1)


# ---------------------------------------------------------------------------
# Per-type latency histograms (satellite b)
# ---------------------------------------------------------------------------


def test_per_type_latency_histograms_populated():
    requests = mixed_requests([NLOS], num_requests=12, seed=3)
    load, _ = _run(_serve_traced(ServiceConfig(), requests))
    assert load.completed == len(requests)
    kinds = {type(r).__name__ for r in requests}
    snapshot = global_registry().snapshot()
    latency = {
        name: state.count
        for name, state in snapshot.histograms.items()
        if name.endswith(".request_latency_s")
    }
    if "EvaluateRequest" in kinds:
        assert latency["serve.evaluate.request_latency_s"] > 0
    if "ActuateRequest" in kinds:
        assert latency["serve.actuate.request_latency_s"] > 0
    assert sum(latency.values()) == len(requests)
    for state in snapshot.histograms.values():
        if state.count:
            assert state.min > 0  # real durations, not placeholder zeros


# ---------------------------------------------------------------------------
# Run records: v2 traces, v1 compatibility (satellite c)
# ---------------------------------------------------------------------------


def test_run_record_v2_carries_request_traces(tmp_path):
    path = tmp_path / "records.jsonl"
    requests = mixed_requests([NLOS], num_requests=4, seed=9)
    with RunRecorder("serve_test", path=str(path), jobs=1) as recorder:
        async def serve():
            async with EnvironmentService(
                ServiceConfig(trace_sample=1)
            ) as service:
                await run_closed_loop(service.submit, requests, 2)
                return service.drain_request_traces()

        recorder.add_request_traces(_run(serve()))
    record = read_records(str(path))[0]
    assert record["schema_version"] == SCHEMA_VERSION
    assert validate_record(record) == []
    assert len(record["request_traces"]) == len(requests)
    some_trace = next(iter(record["request_traces"].values()))
    names = {span["name"] for span in some_trace}
    assert "serve.request" in names


def test_validate_record_accepts_v1_without_traces(tmp_path):
    v1 = {
        "schema_version": 1,
        "experiment": "x",
        "created_at": "2026-01-01T00:00:00",
        "wall_s": 0.5,
        "jobs": None,
        "workers": 0,
        "config": {},
        "seeds": {},
        "observability_enabled": True,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": {},
        "meta": {"python": "3.x"},
    }
    assert validate_record(v1) == []
    # v1 + request_traces is a contradiction, not a silent pass.
    errors = validate_record(dict(v1, request_traces={}))
    assert any("schema_version 2" in e for e in errors)
    # Both versions read back from one file.
    path = tmp_path / "mixed.jsonl"
    v2 = dict(v1, schema_version=2, request_traces={})
    path.write_text(json.dumps(v1) + "\n" + json.dumps(v2) + "\n")
    records = read_records(str(path))
    assert [r["schema_version"] for r in records] == [1, 2]
    assert all(validate_record(r) == [] for r in records)


def test_validate_record_rejects_malformed_stitching_fields():
    base = {
        "schema_version": 2,
        "experiment": "x",
        "created_at": "2026-01-01T00:00:00",
        "wall_s": 0.5,
        "jobs": None,
        "workers": 0,
        "config": {},
        "seeds": {},
        "observability_enabled": True,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": {},
        "meta": {"python": "3.x"},
    }
    span = {
        "name": "serve.request",
        "start_s": 0.0,
        "duration_s": 0.1,
        "span_id": "a-1",
        "parent_id": None,
        "request_id": "r1",
        "pid": 1,
    }
    good = dict(base, request_traces={"r1": [span]})
    assert validate_record(good) == []
    assert validate_record(dict(base, request_traces=[])) != []
    assert (
        validate_record(
            dict(base, request_traces={"r1": [dict(span, span_id="")]})
        )
        != []
    )
    assert (
        validate_record(
            dict(base, request_traces={"r1": [dict(span, parent_id="")]})
        )
        != []
    )
    assert (
        validate_record(
            dict(base, request_traces={"r1": [dict(span, request_id="r2")]})
        )
        != []
    )


# ---------------------------------------------------------------------------
# Telemetry stream and SLO hooks
# ---------------------------------------------------------------------------


def test_service_writes_telemetry_stream(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    requests = mixed_requests([NLOS], num_requests=6, seed=4)
    config = ServiceConfig(
        telemetry_path=str(path), telemetry_interval_s=0.01
    )
    load, _ = _run(_serve_traced(config, requests))
    assert load.completed == len(requests)
    samples = read_telemetry(str(path))
    assert samples  # at least the close-time sample landed
    final = samples[-1]
    assert final["counters"]["serve.requests"] == len(requests)
    digests = final["histograms"]
    assert "serve.evaluate.request_latency_s" in digests


def test_load_result_evaluate_slo():
    requests = mixed_requests([NLOS], num_requests=8, seed=6)

    async def serve():
        from repro.obs.metrics import monotonic_s

        async with EnvironmentService(ServiceConfig()) as service:
            return await run_closed_loop(
                service.submit, requests, 4, timer=monotonic_s
            )

    load = _run(serve())
    statuses = load.evaluate_slo(
        SloPolicy.from_specs(
            ["p95:evaluate<60.0", "rate:serve.rejections/serve.requests<0.5"]
        )
    )
    assert len(statuses) == 2
    assert all(status.ok for status in statuses)
    strict = load.evaluate_slo(SloPolicy.from_specs(["p50:evaluate<1e-9"]))
    evaluated = [s for s in strict if not s.ok]
    assert evaluated  # an impossible ceiling is reported as violated


def test_service_client_bind_groups_requests():
    async def serve():
        async with EnvironmentService(ServiceConfig()) as service:
            client = ServiceClient(service)
            with ServiceClient.bind("session-1"):
                await client.evaluate(NLOS, ((0, 0, 0),))
                await client.actuate(NLOS, (1, 1, 1))
            return service.request_traces()

    traces = _run(serve())
    assert set(traces) == {"session-1"}
    roots = [
        record
        for record in traces["session-1"]
        if record.name == "serve.request"
    ]
    assert len(roots) == 2  # both calls share the request id
