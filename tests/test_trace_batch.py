"""Batched ray tracing must reproduce the per-point scalar trace exactly.

``RayTracer.trace_batch`` is a pure re-vectorisation of ``trace`` — same
candidate enumeration, same blockage rules, same amplitude folds — so for
every receiver point the compressed batch row must match the scalar path
list path-for-path: count, kind order, complex gain, delay and angles.
The same discipline applies one layer up to ``ChannelBasis.trace_batch``
and ``Testbed.bases_for_points``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basis import ChannelBasis
from repro.em.channel import subcarrier_frequencies
from repro.em.geometry import Point
from repro.em.paths import paths_to_cfr
from repro.experiments import StudyConfig, build_los_setup, build_nlos_setup

GAIN_TOL = 1e-12


def _grid_around(center: Point, rows: int = 3, cols: int = 5) -> list[Point]:
    xs = np.linspace(center.x - 0.9, center.x + 0.9, cols)
    ys = np.linspace(center.y - 0.6, center.y + 0.6, rows)
    return [Point(float(x), float(y)) for y in ys for x in xs]


@pytest.mark.parametrize("seed", [1, 2, 7])
@pytest.mark.parametrize("builder", [build_nlos_setup, build_los_setup])
def test_trace_batch_matches_scalar_trace(builder, seed):
    setup = builder(seed, StudyConfig())
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position)

    batch = tracer.trace_batch(
        tx_chain.position, points, tx_chain.antenna, rx_chain.antenna
    )
    assert batch.num_points == len(points)
    for index, point in enumerate(points):
        scalar = tracer.trace(
            tx_chain.position, point, tx_chain.antenna, rx_chain.antenna
        )
        paths = batch.paths(index)
        assert len(paths) == len(scalar)
        for got, want in zip(paths, scalar):
            assert got.kind == want.kind
            assert got.hops == want.hops
            assert abs(got.gain - want.gain) <= GAIN_TOL
            assert got.delay_s == pytest.approx(want.delay_s, abs=1e-15)
            assert got.aod_rad == pytest.approx(want.aod_rad, abs=1e-12)
            assert got.aoa_rad == pytest.approx(want.aoa_rad, abs=1e-12)


def test_trace_batch_counts_and_point_arrays():
    setup = build_nlos_setup(2, StudyConfig())
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position)
    batch = tracer.trace_batch(
        tx_chain.position, points, tx_chain.antenna, rx_chain.antenna
    )
    counts = batch.counts()
    for index, point in enumerate(points):
        scalar = tracer.trace(
            tx_chain.position, point, tx_chain.antenna, rx_chain.antenna
        )
        assert counts[index] == len(scalar)
        gains, delays = batch.point_arrays(index)
        np.testing.assert_allclose(
            gains, np.array([p.gain for p in scalar]), atol=GAIN_TOL, rtol=0
        )
        np.testing.assert_allclose(
            delays, np.array([p.delay_s for p in scalar]), atol=1e-15, rtol=0
        )


def test_trace_batch_options_match_scalar():
    setup = build_nlos_setup(3, StudyConfig())
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position, rows=2, cols=3)
    for include_los in (True, False):
        for include_scatterers in (True, False):
            batch = tracer.trace_batch(
                tx_chain.position,
                points,
                tx_chain.antenna,
                rx_chain.antenna,
                include_los=include_los,
                include_scatterers=include_scatterers,
            )
            for index, point in enumerate(points):
                scalar = tracer.trace(
                    tx_chain.position,
                    point,
                    tx_chain.antenna,
                    rx_chain.antenna,
                    include_los=include_los,
                    include_scatterers=include_scatterers,
                )
                paths = batch.paths(index)
                assert [p.kind for p in paths] == [p.kind for p in scalar]
                for got, want in zip(paths, scalar):
                    assert abs(got.gain - want.gain) <= GAIN_TOL


def test_path_batch_cfr_matches_paths_to_cfr():
    setup = build_nlos_setup(2, StudyConfig())
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position, rows=2, cols=4)
    batch = tracer.trace_batch(
        tx_chain.position, points, tx_chain.antenna, rx_chain.antenna
    )
    freqs = subcarrier_frequencies(
        setup.testbed.num_subcarriers, setup.testbed.bandwidth_hz
    )
    cfr = batch.cfr(freqs)
    assert cfr.shape == (len(points), len(freqs))
    for index in range(len(points)):
        gains, delays = batch.point_arrays(index)
        expected = paths_to_cfr(
            [
                type(batch.paths(index)[0])(gain=g, delay_s=d)
                for g, d in zip(gains, delays)
            ],
            freqs,
        )
        np.testing.assert_allclose(cfr[index], expected, atol=1e-12, rtol=0)


def test_channel_basis_trace_batch_matches_scalar():
    setup = build_nlos_setup(2, StudyConfig())
    testbed = setup.testbed
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position, rows=2, cols=3)
    bases = ChannelBasis.trace_batch(
        testbed.array,
        tx_chain.position,
        points,
        testbed.tracer,
        tx_antenna=tx_chain.antenna,
        rx_antenna=rx_chain.antenna,
        num_subcarriers=testbed.num_subcarriers,
        bandwidth_hz=testbed.bandwidth_hz,
    )
    assert len(bases) == len(points)
    for point, batched in zip(points, bases):
        scalar = ChannelBasis.trace(
            testbed.array,
            tx_chain.position,
            point,
            testbed.tracer,
            tx_antenna=tx_chain.antenna,
            rx_antenna=rx_chain.antenna,
            num_subcarriers=testbed.num_subcarriers,
            bandwidth_hz=testbed.bandwidth_hz,
        )
        np.testing.assert_allclose(
            batched.evaluate(), scalar.evaluate(), atol=1e-12, rtol=0
        )


def test_testbed_bases_for_points_matches_basis_for_probe():
    from repro.sdr.device import warp_v3

    setup = build_nlos_setup(1, StudyConfig())
    testbed = setup.testbed
    rx0 = setup.rx_device.position
    points = _grid_around(rx0, rows=2, cols=2)
    probe_antenna = warp_v3("probe", rx0).chains[0].antenna
    bases = testbed.bases_for_points(setup.tx_device, points, probe_antenna)
    for point, batched in zip(points, bases):
        probe = warp_v3("probe", point)
        scalar = testbed.basis_for(setup.tx_device, probe)
        np.testing.assert_allclose(
            batched.evaluate(), scalar.evaluate(), atol=1e-12, rtol=0
        )


def test_trace_batch_accepts_ndarray_points():
    setup = build_los_setup(2, StudyConfig())
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid_around(rx_chain.position, rows=2, cols=2)
    as_array = np.array([[p.x, p.y] for p in points])
    from_list = tracer.trace_batch(
        tx_chain.position, points, tx_chain.antenna, rx_chain.antenna
    )
    from_array = tracer.trace_batch(
        tx_chain.position, as_array, tx_chain.antenna, rx_chain.antenna
    )
    np.testing.assert_array_equal(from_list.valid, from_array.valid)
    np.testing.assert_array_equal(from_list.gains, from_array.gains)
    np.testing.assert_array_equal(from_list.delays_s, from_array.delays_s)
