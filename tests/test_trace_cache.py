"""TraceCache LRU policy, byte budgets, and the configure()/reset() seam."""

from __future__ import annotations

import pytest

from repro.em import trace_cache as trace_cache_module
from repro.em.antennas import IsotropicAntenna
from repro.em.geometry import Point
from repro.em.raytracer import RayTracer
from repro.em.scene import shoebox_scene
from repro.em.trace_cache import (
    DEFAULT_MAXSIZE,
    TraceCache,
    configure,
    global_trace_cache,
    reset,
)
from repro.obs.metrics import global_registry


def _tracer():
    return RayTracer(shoebox_scene(width=6.0, height=5.0), max_bounces=1)


def _points(n):
    return [Point(1.0 + 0.1 * i, 1.0) for i in range(n)]


# ---------------------------------------------------------------------------
# LRU recency: hits promote, so hot entries survive pressure
# ---------------------------------------------------------------------------


def test_hit_promotes_entry_to_most_recent():
    tracer = _tracer()
    cache = TraceCache(maxsize=2)
    antenna = IsotropicAntenna()
    tx = Point(2.0, 2.0)
    hot, cold, third = _points(3)

    cache.get_or_trace(tracer, tx, hot, antenna, antenna)
    cache.get_or_trace(tracer, tx, cold, antenna, antenna)
    # Touch `hot`: it becomes most-recent, so inserting `third` must
    # evict `cold`, not `hot`.
    cache.get_or_trace(tracer, tx, hot, antenna, antenna)
    cache.get_or_trace(tracer, tx, third, antenna, antenna)
    assert cache.evictions == 1

    cache.get_or_trace(tracer, tx, hot, antenna, antenna)
    assert cache.hits == 2  # hot survived
    cache.get_or_trace(tracer, tx, cold, antenna, antenna)
    assert cache.misses == 4  # cold was the evicted one


def test_hit_rate_property_and_gauge():
    tracer = _tracer()
    cache = TraceCache(maxsize=8)
    antenna = IsotropicAntenna()
    tx = Point(2.0, 2.0)
    point = _points(1)[0]

    assert cache.hit_rate == 0.0
    cache.get_or_trace(tracer, tx, point, antenna, antenna)
    for _ in range(3):
        cache.get_or_trace(tracer, tx, point, antenna, antenna)
    assert cache.hit_rate == pytest.approx(0.75)
    snap = global_registry().snapshot()
    assert snap.gauges["em.trace_cache.hit_rate"] == pytest.approx(0.75)

    cache.reset_counters()
    assert cache.hit_rate == 0.0


# ---------------------------------------------------------------------------
# Byte-aware budgets
# ---------------------------------------------------------------------------


def test_byte_budget_evicts_lru_until_under_budget():
    tracer = _tracer()
    antenna = IsotropicAntenna()
    tx = Point(2.0, 2.0)

    # Learn the approximate per-entry size from an unbudgeted probe.
    probe = TraceCache(maxsize=8)
    probe.get_or_trace(tracer, tx, _points(1)[0], antenna, antenna)
    per_entry = probe.current_bytes
    assert per_entry > 0

    cache = TraceCache(maxsize=100, max_bytes=2 * per_entry)
    for point in _points(4):
        cache.get_or_trace(tracer, tx, point, antenna, antenna)
    assert len(cache) == 2
    assert cache.evictions == 2
    assert cache.current_bytes <= cache.max_bytes
    snap = global_registry().snapshot()
    assert snap.gauges["em.trace_cache.bytes"] == cache.current_bytes


def test_byte_budget_keeps_single_oversized_entry():
    tracer = _tracer()
    antenna = IsotropicAntenna()
    cache = TraceCache(maxsize=8, max_bytes=1)
    paths = cache.get_or_trace(
        tracer, Point(2.0, 2.0), _points(1)[0], antenna, antenna
    )
    assert len(cache) == 1  # never evicts below one resident entry
    again = cache.get_or_trace(
        tracer, Point(2.0, 2.0), _points(1)[0], antenna, antenna
    )
    assert again is paths


def test_batch_entries_account_array_bytes():
    tracer = _tracer()
    antenna = IsotropicAntenna()
    cache = TraceCache(maxsize=8)
    batch = cache.get_or_trace_batch(
        tracer, Point(2.0, 2.0), _points(5), antenna, antenna
    )
    expected = (
        batch.gains.nbytes
        + batch.delays_s.nbytes
        + batch.aod_rad.nbytes
        + batch.aoa_rad.nbytes
        + batch.valid.nbytes
    )
    assert cache.current_bytes == expected

    cache.clear()
    assert cache.current_bytes == 0
    assert len(cache) == 0


def test_invalid_budgets_rejected():
    with pytest.raises(ValueError):
        TraceCache(maxsize=0)
    with pytest.raises(ValueError):
        TraceCache(max_bytes=0)


# ---------------------------------------------------------------------------
# configure()/reset() seam for the global cache
# ---------------------------------------------------------------------------


def test_configure_rebinds_global_cache():
    original = global_trace_cache()
    sized = configure(maxsize=7, max_bytes=1 << 20)
    assert global_trace_cache() is sized
    assert sized is not original
    assert sized.maxsize == 7
    assert sized.max_bytes == 1 << 20
    assert len(sized) == 0

    restored = reset()
    assert global_trace_cache() is restored
    assert restored.maxsize == DEFAULT_MAXSIZE
    assert restored.max_bytes is None


def test_reset_clears_previous_global_entries():
    tracer = _tracer()
    antenna = IsotropicAntenna()
    cache = configure(maxsize=16)
    cache.get_or_trace(tracer, Point(2.0, 2.0), _points(1)[0], antenna, antenna)
    assert len(cache) == 1
    trace_cache_module.reset()
    # The old instance was drained, so stale references hold no arrays.
    assert len(cache) == 0
    assert len(global_trace_cache()) == 0


def test_autouse_fixture_gives_fresh_cache():
    cache = global_trace_cache()
    assert len(cache) == 0
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


def test_counters_survive_registry_replacement():
    """Regression: cache traffic must land in the *current* registry.

    The module once captured raw Counter/Gauge objects at import, so
    after ``reset_observability(clear=True)`` every hit/miss recorded
    into a dead registry and run records showed zero cache traffic.
    """
    from repro.obs import reset_observability

    reset_observability(clear=True)
    tracer = _tracer()
    cache = TraceCache(maxsize=8)
    antenna = IsotropicAntenna()
    tx = Point(2.0, 2.0)
    point = _points(1)[0]
    cache.get_or_trace(tracer, tx, point, antenna, antenna)
    cache.get_or_trace(tracer, tx, point, antenna, antenna)
    snap = global_registry().snapshot()
    assert snap.counters["em.trace_cache.misses"] == 1
    assert snap.counters["em.trace_cache.hits"] == 1
