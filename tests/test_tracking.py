"""Tests for repro.experiments.tracking."""

import numpy as np
import pytest

from repro.experiments.tracking import run_tracking


@pytest.fixture(scope="module")
def short_run():
    return run_tracking(duration_s=6.0, step_s=1.0, reoptimize_interval_s=2.0)


class TestTracking:
    def test_all_policies_present(self, short_run):
        assert set(short_run.min_snr_db) == {
            "static",
            "periodic",
            "model-based",
            "bandit",
        }

    def test_series_lengths(self, short_run):
        n = short_run.times_s.size
        for series in short_run.min_snr_db.values():
            assert series.size == n

    def test_measurement_accounting(self, short_run):
        # Static: one search; periodic: search at t=0 plus per-interval
        # re-searches; bandit: one sounding per step.
        assert short_run.measurements["static"] < short_run.measurements["periodic"]
        assert short_run.measurements["bandit"] == short_run.times_s.size

    def test_model_based_cheaper_than_periodic(self, short_run):
        assert (
            short_run.measurements["model-based"]
            < short_run.measurements["periodic"]
        )

    def test_channel_actually_varies(self):
        result = run_tracking(duration_s=20.0, step_s=0.5, walker_speed_mph=2.0)
        assert np.std(result.min_snr_db["static"]) > 0.5

    def test_model_based_quality(self):
        result = run_tracking(
            duration_s=12.0, step_s=0.5, reoptimize_interval_s=2.0
        )
        # Model-based tracking should at least match the static policy.
        assert (
            result.mean_min_snr_db("model-based")
            >= result.mean_min_snr_db("static") - 0.5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_tracking(duration_s=0.0)
        with pytest.raises(ValueError):
            run_tracking(step_s=-1.0)
        with pytest.raises(ValueError):
            run_tracking(reoptimize_interval_s=0.0)
