"""Tests for repro.analysis.viz and repro.cli."""

import numpy as np
import pytest

from repro.analysis.viz import render_profile, render_profiles, render_scene, sparkline
from repro.cli import build_parser, main
from repro.em.geometry import Point
from repro.em.scene import blocker_between, shoebox_scene


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline(np.arange(10.0))) == 10

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(np.arange(8.0))
        assert line == "".join(sorted(line))

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_constant_series(self):
        line = sparkline(np.full(5, 3.0))
        assert len(set(line)) == 1


class TestProfiles:
    def test_render_profile_contains_extremes(self):
        text = render_profile(np.array([0.0, 40.0]), lo=-5.0, hi=45.0)
        assert "min" in text and "max" in text

    def test_clamping(self):
        # Values outside [lo, hi] must not crash and map to the end glyphs.
        text = render_profile(np.array([-100.0, 100.0]), lo=0.0, hi=10.0)
        assert "|" in text

    def test_render_profiles_aligns_labels(self):
        text = render_profiles(
            [("a", np.zeros(4)), ("longer", np.ones(4))]
        )
        lines = text.split("\n")
        assert lines[0].index("|") == lines[1].index("|")

    def test_render_profiles_empty(self):
        assert render_profiles([]) == ""


class TestRenderScene:
    def test_walls_and_markers(self, rng):
        scene = shoebox_scene(8.0, 6.0, num_scatterers=2, rng=rng)
        scene = scene.with_obstacles(blocker_between(Point(2, 3), Point(6, 3)))
        text = render_scene(scene, markers={"T": Point(2, 3), "R": Point(6, 3)})
        assert "#" in text
        assert "X" in text
        assert "o" in text
        assert "T" in text and "R" in text

    def test_canvas_dimensions(self, simple_scene):
        text = render_scene(simple_scene, width=40, height=12)
        lines = text.split("\n")
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_too_small_rejected(self, simple_scene):
        with pytest.raises(ValueError):
            render_scene(simple_scene, width=5, height=3)


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("demo", "scene", "figures", "timing"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_serve_trace_sample_default_matches_service_config(self):
        from repro.serve import ServiceConfig

        args = build_parser().parse_args(["serve"])
        assert args.trace_sample == ServiceConfig().trace_sample

    def test_scene_command_runs(self, capsys):
        assert main(["scene", "--placement", "1"]) == 0
        output = capsys.readouterr().out
        assert "#" in output

    def test_demo_command_runs(self, capsys):
        assert main(["demo", "--placement", "2", "--tx-power-dbm", "5"]) == 0
        output = capsys.readouterr().out
        assert "goodput" in output

    def test_timing_command_runs(self, capsys):
        assert main(["timing", "--elements", "4"]) == 0
        output = capsys.readouterr().out
        assert "wired bus" in output

    def test_figures_command_small(self, capsys):
        code = main(
            [
                "figures",
                "--placements",
                "2",
                "--repetitions",
                "2",
                "--mimo-measurements",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Fig 4" in output and "Fig 8" in output
