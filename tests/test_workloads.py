"""Tests for repro.experiments.workloads."""

import numpy as np
import pytest

from repro.core import ConfigurationSpace, LinkObjective, MinSnrObjective
from repro.experiments.workloads import (
    TrafficEpoch,
    evaluate_dynamic_strategies,
    generate_traffic,
)


@pytest.fixture
def space():
    return ConfigurationSpace((4, 4))


def _links(space, count=3, seed=0):
    rng = np.random.default_rng(seed)
    links = []
    for index in range(count):
        table = rng.standard_normal((space.size, 4)) + 20.0

        def measure(config, table=table):
            return table[space.index_of(config)]

        links.append(
            LinkObjective(name=f"l{index}", measure=measure, objective=MinSnrObjective())
        )
    return links


class TestTrafficGeneration:
    def test_epochs_cover_duration(self, rng):
        epochs = generate_traffic(["a", "b"], 60.0, rng)
        total = sum(epoch.duration_s for epoch in epochs)
        assert total == pytest.approx(60.0)
        assert epochs[0].start_s == 0.0
        for first, second in zip(epochs, epochs[1:]):
            assert second.start_s == pytest.approx(first.start_s + first.duration_s)

    def test_active_sets_change(self, rng):
        epochs = generate_traffic(["a", "b", "c"], 200.0, rng)
        assert len({epoch.active_links for epoch in epochs}) > 1

    def test_duty_cycle_reflects_means(self, rng):
        epochs = generate_traffic(
            ["a"], 2000.0, rng, mean_on_s=9.0, mean_off_s=1.0
        )
        on_time = sum(e.duration_s for e in epochs if "a" in e.active_links)
        assert on_time / 2000.0 == pytest.approx(0.9, abs=0.08)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_traffic([], 10.0, rng)
        with pytest.raises(ValueError):
            generate_traffic(["a"], 0.0, rng)
        with pytest.raises(ValueError):
            generate_traffic(["a"], 10.0, rng, mean_on_s=0.0)
        with pytest.raises(ValueError):
            TrafficEpoch(start_s=0.0, duration_s=0.0, active_links=("a",))


class TestDynamicStrategies:
    def test_cached_matches_reactive_quality(self, space, rng):
        links = _links(space)
        epochs = generate_traffic([l.name for l in links], 150.0, rng)
        results = evaluate_dynamic_strategies(links, space, epochs)
        assert results["cached"].time_weighted_score == pytest.approx(
            results["reactive-joint"].time_weighted_score
        )

    def test_cached_spends_less(self, space, rng):
        links = _links(space)
        epochs = generate_traffic([l.name for l in links], 300.0, rng)
        results = evaluate_dynamic_strategies(links, space, epochs)
        # With recurring active sets, the cache amortises searches.
        assert results["cached"].num_searches < results["reactive-joint"].num_searches
        assert (
            results["cached"].num_measurements
            < results["reactive-joint"].num_measurements
        )

    def test_adaptive_at_least_static(self, space, rng):
        links = _links(space)
        epochs = generate_traffic([l.name for l in links], 200.0, rng)
        results = evaluate_dynamic_strategies(links, space, epochs)
        assert (
            results["reactive-joint"].time_weighted_score
            >= results["static-joint"].time_weighted_score - 1e-9
        )

    def test_static_uses_one_search(self, space, rng):
        links = _links(space)
        epochs = generate_traffic([l.name for l in links], 50.0, rng)
        results = evaluate_dynamic_strategies(links, space, epochs)
        assert results["static-joint"].num_searches == 1

    def test_validation(self, space, rng):
        links = _links(space)
        with pytest.raises(ValueError):
            evaluate_dynamic_strategies([], space, [])
        with pytest.raises(ValueError):
            evaluate_dynamic_strategies(links, space, [])
